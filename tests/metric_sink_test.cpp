// Tests for the metrics-export surface: golden header/row formats for the
// CSV and JSON-lines sinks, ring buffer wrap/drain/dump semantics, schema
// validation, the RunRecorder envelope, and — most importantly — the
// differential guarantee that attaching a sink to a run cannot change its
// state digest on any engine (the write-only observation contract that
// bench/scale_metrics re-checks at scale on every bench run).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/bench_meta.hpp"
#include "pss/common/rng.hpp"
#include "pss/obs/json_writer.hpp"
#include "pss/obs/metric_sink.hpp"
#include "pss/obs/run_recorder.hpp"
#include "pss/obs/schemas.hpp"
#include "pss/obs/sinks.hpp"
#include "pss/obs/streaming_observer.hpp"
#include "pss/protocol/spec.hpp"
#include "pss/scenarios/digest.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/sim/event_engine.hpp"
#include "pss/sim/network.hpp"
#include "pss/sim/parallel_cycle_engine.hpp"
#include "pss/transport/loopback_transport.hpp"
#include "pss/transport/service_node.hpp"
#include "pss/transport/wire.hpp"

namespace {

using namespace pss;
using namespace pss::obs;

// A four-type schema exercising every cell encoding the backends support.
constexpr FieldSpec kGoldenFields[] = {
    {"cycle", FieldType::kU64},
    {"value", FieldType::kF64},
    {"label", FieldType::kStr},
    {"ok", FieldType::kBool},
};
constexpr MetricSchema kGoldenSchema{"pss.test.golden", 3, kGoldenFields,
                                     std::size(kGoldenFields)};

constexpr FieldSpec kPairFields[] = {
    {"cycle", FieldType::kU64},
    {"value", FieldType::kF64},
};
constexpr MetricSchema kPairSchema{"pss.test.pair", 1, kPairFields,
                                   std::size(kPairFields)};

// meta.git is set explicitly: an empty git field is substituted with the
// build's `git describe`, which would make goldens machine-dependent.
RunMetadata golden_meta() {
  RunMetadata meta;
  meta.bench = "unit";
  meta.engine = "cycle";
  meta.protocol = "newscast";
  meta.protocol_id = 10;
  meta.n = 64;
  meta.view_size = 8;
  meta.cycles = 4;
  meta.seed = 7;
  meta.git = "testgit";
  return meta;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_path(const char* name) { return testing::TempDir() + name; }

std::uint32_t read_le32(const std::string& bytes, std::size_t offset) {
  std::uint32_t v = 0;
  for (int b = 3; b >= 0; --b) {
    v = (v << 8) |
        static_cast<unsigned char>(bytes[offset + static_cast<std::size_t>(b)]);
  }
  return v;
}

std::uint64_t read_le64(const std::string& bytes, std::size_t offset) {
  std::uint64_t v = 0;
  for (int b = 7; b >= 0; --b) {
    v = (v << 8) |
        static_cast<unsigned char>(bytes[offset + static_cast<std::size_t>(b)]);
  }
  return v;
}

// ---- golden file formats ----------------------------------------------------

TEST(CsvMetricSinkTest, GoldenHeaderAndRows) {
  const std::string path = temp_path("metric_sink_golden.csv");
  {
    CsvMetricSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.begin(kGoldenSchema, golden_meta());
    sink.row({std::uint64_t{1}, 0.5, "plain", true});
    sink.row({std::uint64_t{2}, -1.25, std::string_view("a,b\"c"), false});
    sink.finish();
    EXPECT_TRUE(sink.ok());
  }
  EXPECT_EQ(slurp(path),
            "# pss-metrics-csv 1\n"
            "# schema: pss.test.golden 3\n"
            "# fields: cycle:u64,value:f64,label:str,ok:bool\n"
            "# meta: bench=unit engine=cycle protocol=newscast protocol_id=10 "
            "n=64 c=8 cycles=4 seed=7 git=testgit\n"
            "cycle,value,label,ok\n"
            "1,0.5,plain,1\n"
            "2,-1.25,\"a,b\"\"c\",0\n");
}

TEST(JsonlMetricSinkTest, GoldenHeaderAndRow) {
  const std::string path = temp_path("metric_sink_golden.jsonl");
  {
    JsonlMetricSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.begin(kGoldenSchema, golden_meta());
    sink.row({std::uint64_t{1}, 0.5, "hi\"there", true});
    sink.finish();
    EXPECT_TRUE(sink.ok());
  }
  EXPECT_EQ(slurp(path),
            make_jsonl_header(kGoldenSchema, golden_meta()) + "\n" +
                "{\"cycle\":1,\"value\":0.5,\"label\":\"hi\\\"there\","
                "\"ok\":true}\n");
}

TEST(JsonlHeaderTest, GoldenHeaderObject) {
  EXPECT_EQ(
      make_jsonl_header(kPairSchema, golden_meta()),
      "{\"pss_metrics\":1,"
      "\"schema\":{\"name\":\"pss.test.pair\",\"version\":1},"
      "\"fields\":[{\"name\":\"cycle\",\"type\":\"u64\"},"
      "{\"name\":\"value\",\"type\":\"f64\"}],"
      "\"meta\":{\"bench\":\"unit\",\"engine\":\"cycle\","
      "\"protocol\":\"newscast\",\"protocol_id\":10,\"n\":64,\"c\":8,"
      "\"cycles\":4,\"seed\":7,\"git\":\"testgit\"}}");
}

TEST(JsonlHeaderTest, EmptyGitFieldFallsBackToBuildDescribe) {
  RunMetadata meta = golden_meta();
  meta.git = {};
  const std::string header = make_jsonl_header(kPairSchema, meta);
  const std::string describe(build_git_describe());
  ASSERT_FALSE(describe.empty());
  EXPECT_NE(header.find("\"git\":\"" + describe), std::string::npos);
}

// ---- JsonWriter formatting --------------------------------------------------

TEST(JsonWriterTest, EscapesStringsAndNullsNonFiniteDoubles) {
  std::string out;
  JsonWriter w(out, /*pretty=*/false);
  w.begin_object();
  w.field("s", "a\"b\\c\nd\x01");
  w.field("nan", std::numeric_limits<double>::quiet_NaN());
  w.field("inf", std::numeric_limits<double>::infinity());
  w.field("neg", std::int64_t{-3});
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(out,
            "{\"s\":\"a\\\"b\\\\c\\nd\\u0001\","
            "\"nan\":null,\"inf\":null,\"neg\":-3}");
}

TEST(JsonWriterTest, DoublesRoundTripShortest) {
  std::string out;
  JsonWriter w(out, /*pretty=*/false);
  w.begin_array();
  w.value(0.1);
  w.value(1.0 / 3.0);
  w.end_array();
  EXPECT_EQ(out, "[0.1,0.3333333333333333]");
  EXPECT_EQ(std::stod("0.3333333333333333"), 1.0 / 3.0);
}

// ---- schema validation ------------------------------------------------------

TEST(MetricSinkTest, RowArityAndTypeMismatchesThrow) {
  // FanOutSink validates even with zero children, so a producer's schema
  // bug surfaces in runs that record nothing.
  FanOutSink fan;
  fan.begin(kPairSchema, golden_meta());
  EXPECT_THROW(fan.row({std::uint64_t{1}}), std::logic_error);
  EXPECT_THROW(fan.row({std::uint64_t{1}, 0.5, 0.5}), std::logic_error);
  EXPECT_THROW(fan.row({0.5, std::uint64_t{1}}), std::logic_error);
  fan.row({std::uint64_t{1}, 0.5});  // matching row passes
}

TEST(MetricSinkTest, FanOutForwardsToEveryChild) {
  RingBufferSink a(4);
  RingBufferSink b(4);
  FanOutSink fan;
  fan.add(a);
  fan.add(b);
  ASSERT_EQ(fan.count(), 2u);
  fan.begin(kPairSchema, golden_meta());
  fan.row({std::uint64_t{1}, 2.0});
  fan.finish();
  EXPECT_EQ(a.total_appended(), 1u);
  EXPECT_EQ(b.total_appended(), 1u);
}

// ---- ring buffer semantics --------------------------------------------------

TEST(RingBufferSinkTest, OverflowOverwritesOldestAndDrainsInOrder) {
  RingBufferSink ring(3);
  ring.begin(kPairSchema, golden_meta());
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ring.row({i, static_cast<double>(i) * 0.5});
  }
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.total_appended(), 5u);
  EXPECT_EQ(ring.dropped(), 2u);

  std::vector<std::uint64_t> cycles;
  std::vector<double> values;
  ring.drain([&](std::span<const std::uint64_t> cells) {
    ASSERT_EQ(cells.size(), kPairSchema.field_count);
    cycles.push_back(cells[0]);
    values.push_back(std::bit_cast<double>(cells[1]));
  });
  EXPECT_EQ(cycles, (std::vector<std::uint64_t>{3, 4, 5}));
  EXPECT_EQ(values, (std::vector<double>{1.5, 2.0, 2.5}));

  // drain() empties the ring but keeps counting from the same total.
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_appended(), 5u);
  EXPECT_EQ(ring.dropped(), 5u);
  ring.row({std::uint64_t{6}, 3.0});
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.total_appended(), 6u);
}

TEST(RingBufferSinkTest, DumpRoundTripsHeaderAndPackedCells) {
  RingBufferSink ring(4);
  ring.begin(kGoldenSchema, golden_meta());
  ring.row({std::uint64_t{1}, 0.5, "x", true});
  ring.row({std::uint64_t{2}, -2.0, "y", false});

  const std::string path = temp_path("metric_sink_ring.bin");
  ASSERT_TRUE(ring.dump(path));
  const std::string bytes = slurp(path);

  const std::string header = make_jsonl_header(kGoldenSchema, golden_meta());
  ASSERT_GE(bytes.size(), 48 + header.size() + 2 * 4 * 8);
  EXPECT_EQ(bytes.substr(0, 8), "PSSRING1");
  EXPECT_EQ(read_le32(bytes, 8), 1u);                    // format version
  EXPECT_EQ(read_le32(bytes, 12), header.size());        // header_len
  EXPECT_EQ(read_le32(bytes, 16), 4u);                   // field_count
  EXPECT_EQ(read_le32(bytes, 20), 32u);                  // record stride
  EXPECT_EQ(read_le64(bytes, 24), 4u);                   // capacity
  EXPECT_EQ(read_le64(bytes, 32), 2u);                   // total_appended
  EXPECT_EQ(read_le64(bytes, 40), 2u);                   // record_count
  EXPECT_EQ(bytes.substr(48, header.size()), header);

  const std::size_t rows = 48 + header.size();
  EXPECT_EQ(read_le64(bytes, rows + 0), 1u);
  EXPECT_EQ(std::bit_cast<double>(read_le64(bytes, rows + 8)), 0.5);
  EXPECT_EQ(read_le64(bytes, rows + 16), RingBufferSink::hash_str("x"));
  EXPECT_EQ(read_le64(bytes, rows + 24), 1u);  // bool true
  EXPECT_EQ(read_le64(bytes, rows + 32), 2u);
  EXPECT_EQ(std::bit_cast<double>(read_le64(bytes, rows + 40)), -2.0);
  EXPECT_EQ(read_le64(bytes, rows + 48), RingBufferSink::hash_str("y"));
  EXPECT_EQ(read_le64(bytes, rows + 56), 0u);  // bool false

  // dump() does not consume: the ring still holds both rows.
  EXPECT_EQ(ring.size(), 2u);
}

// ---- schema registry sanity -------------------------------------------------

TEST(SchemasTest, CanonicalSchemasMatchTheirDocumentedShape) {
  EXPECT_STREQ(schemas::kSnapshot.name, "pss.obs.snapshot");
  EXPECT_EQ(schemas::kSnapshot.version, 1u);
  EXPECT_EQ(schemas::kSnapshot.field_count, 17u);
  EXPECT_STREQ(schemas::kSeries.name, "pss.experiments.series");
  EXPECT_EQ(schemas::kSeries.version, 1u);
  EXPECT_EQ(schemas::kSeries.field_count, 10u);
  EXPECT_STREQ(schemas::kServiceTick.name, "pss.transport.service_tick");
  EXPECT_EQ(schemas::kServiceTick.version, 1u);
  EXPECT_EQ(schemas::kServiceTick.field_count, 10u);
}

TEST(BenchMetaTest, ProtocolWireIdMatchesTransportEncoding) {
  for (const ProtocolSpec& spec : ProtocolSpec::evaluated()) {
    EXPECT_EQ(bench::protocol_wire_id(spec),
              static_cast<std::int32_t>(transport::encode_protocol(spec)))
        << spec.name();
  }
}

// ---- RunRecorder ------------------------------------------------------------

TEST(RunRecorderTest, ToHex16IsZeroPaddedLowercase) {
  EXPECT_EQ(to_hex16(0), "0000000000000000");
  EXPECT_EQ(to_hex16(0x5BD0F8FD2469C20AULL), "5bd0f8fd2469c20a");
  EXPECT_EQ(to_hex16(0xFFFFFFFFFFFFFFFFULL), "ffffffffffffffff");
}

TEST(RunRecorderTest, EnvelopeRecordsGatesAndWritesOnce) {
  RunRecorder rec("unitbench", 2, golden_meta());
  rec.json().key("params");
  rec.json().begin_object();
  rec.json().field("x", std::uint64_t{1});
  rec.json().end_object();
  EXPECT_TRUE(rec.gate("pass", true));
  EXPECT_FALSE(rec.gate("fail", false));
  EXPECT_FALSE(rec.gates_ok());

  const std::string path = temp_path("metric_sink_bench.json");
  ASSERT_TRUE(rec.write(path));
  const std::string doc = slurp(path);
  EXPECT_NE(doc.find("\"pss.bench.unitbench\""), std::string::npos);
  EXPECT_NE(doc.find("\"version\": 2"), std::string::npos);
  EXPECT_NE(doc.find("\"pass\": true"), std::string::npos);
  EXPECT_NE(doc.find("\"fail\": false"), std::string::npos);
  EXPECT_NE(doc.find("\"gates_ok\": false"), std::string::npos);
}

// ---- the write-only observation contract ------------------------------------

sim::Network make_net(std::size_t n, std::uint64_t seed) {
  sim::Network net(ProtocolSpec::newscast(), ProtocolOptions{8, false}, seed);
  net.reserve_nodes(n);
  net.add_nodes(n);
  sim::bootstrap::init_random(net);
  return net;
}

ObserverConfig small_observer_config() {
  ObserverConfig config;
  config.clustering_sample = 16;
  config.path_sources = 2;
  return config;
}

// Runs `cycles` on a fresh identically-seeded network with an observer
// attached, optionally streaming to `sink`; returns the state digest and
// the observer's record count.
template <typename RunEngine>
std::uint64_t run_observed(RunEngine run, MetricSink* sink,
                           std::size_t* records_out) {
  sim::Network net = make_net(64, 99);
  StreamingObserver observer(small_observer_config());
  if (sink != nullptr) {
    observer.attach_sink(*sink, golden_meta());
  }
  run(net, observer);
  *records_out = observer.records().size();
  return scenarios::state_digest(net);
}

template <typename RunEngine>
void expect_sink_is_write_only(RunEngine run) {
  std::size_t plain_records = 0;
  const std::uint64_t plain = run_observed(run, nullptr, &plain_records);
  ASSERT_GT(plain_records, 0u);

  RingBufferSink ring(128);
  std::size_t sinked_records = 0;
  const std::uint64_t sinked = run_observed(run, &ring, &sinked_records);

  EXPECT_EQ(plain, sinked);
  EXPECT_EQ(sinked_records, plain_records);
  EXPECT_EQ(ring.total_appended(), plain_records);
}

TEST(SinkDifferentialTest, CycleEngineDigestUnchangedBySink) {
  expect_sink_is_write_only([](sim::Network& net, StreamingObserver& obs) {
    sim::CycleEngine engine(net);
    engine.attach_probe(obs);
    engine.run(4);
  });
}

TEST(SinkDifferentialTest, ParallelCycleEngineDigestUnchangedBySink) {
  expect_sink_is_write_only([](sim::Network& net, StreamingObserver& obs) {
    sim::ParallelCycleEngine engine(
        net, {2, sim::ParallelPolicy::kDeterministic});
    engine.attach_probe(obs);
    engine.run(4);
  });
}

TEST(SinkDifferentialTest, EventEngineDigestUnchangedBySink) {
  expect_sink_is_write_only([](sim::Network& net, StreamingObserver& obs) {
    sim::EventEngine engine(net, {});
    engine.attach_probe(obs);
    engine.run_cycles(4);
  });
}

// ---- ServiceNode live sink --------------------------------------------------

TEST(ServiceNodeSinkTest, EmitsOneServiceTickRowPerTick) {
  Rng bus_rng(0xB05ULL);
  transport::LoopbackTransport bus({}, bus_rng);
  transport::ServiceNode node(/*self=*/9, ProtocolSpec::newscast(),
                              ProtocolOptions{}, Rng(0xF00DULL), bus);
  RingBufferSink ring(8);
  node.attach_sink(ring, golden_meta());

  const NodeId contacts[] = {1, 2, 3};
  node.init(contacts);
  node.on_tick(0.0);
  node.on_tick(1.0);

  EXPECT_EQ(ring.total_appended(), 2u);
  std::size_t rows = 0;
  ring.drain([&](std::span<const std::uint64_t> cells) {
    ASSERT_EQ(cells.size(), schemas::kServiceTick.field_count);
    EXPECT_EQ(cells[0], rows + 1);  // 1-based tick counter
    EXPECT_EQ(std::bit_cast<double>(cells[1]),
              static_cast<double>(rows));  // now
    EXPECT_GT(cells[2], 0u);               // view_size after init
    ++rows;
  });
  EXPECT_EQ(rows, 2u);
}

}  // namespace
