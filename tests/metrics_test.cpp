// Unit tests for graph metrics against closed-form values on canonical
// graphs (complete, ring, star, path, disjoint unions), plus estimator
// accuracy checks for the sampled variants.
#include <gtest/gtest.h>

#include "pss/graph/metrics.hpp"
#include "pss/graph/random_graph.hpp"

namespace pss::graph {
namespace {

UndirectedGraph complete(std::uint32_t n) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t u = 0; u < n; ++u)
    for (std::uint32_t v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  return UndirectedGraph(n, std::move(edges));
}

UndirectedGraph ring(std::uint32_t n) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t u = 0; u < n; ++u) edges.emplace_back(u, (u + 1) % n);
  return UndirectedGraph(n, std::move(edges));
}

UndirectedGraph star(std::uint32_t leaves) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t v = 1; v <= leaves; ++v) edges.emplace_back(0, v);
  return UndirectedGraph(leaves + 1, std::move(edges));
}

UndirectedGraph path(std::uint32_t n) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t u = 0; u + 1 < n; ++u) edges.emplace_back(u, u + 1);
  return UndirectedGraph(n, std::move(edges));
}

TEST(Metrics, AverageDegreeKnownGraphs) {
  EXPECT_DOUBLE_EQ(average_degree(complete(5)), 4.0);
  EXPECT_DOUBLE_EQ(average_degree(ring(10)), 2.0);
  EXPECT_DOUBLE_EQ(average_degree(star(4)), 8.0 / 5.0);
  EXPECT_DOUBLE_EQ(average_degree(UndirectedGraph(3, {})), 0.0);
}

TEST(Metrics, DegreeHistogramShape) {
  const auto h = degree_histogram(star(4));
  ASSERT_EQ(h.size(), 5u);  // max degree 4
  EXPECT_EQ(h[1], 4u);      // four leaves
  EXPECT_EQ(h[4], 1u);      // one hub
  EXPECT_EQ(h[0], 0u);
}

TEST(Metrics, DegreeSummaryMoments) {
  const auto s = degree_summary(star(4));
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 1.6);
  // Variance: E[d^2] - mean^2 = (4*1 + 16)/5 - 2.56 = 1.44.
  EXPECT_NEAR(s.variance, 1.44, 1e-12);
}

TEST(Metrics, ClusteringCompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(clustering_coefficient(complete(6)), 1.0);
}

TEST(Metrics, ClusteringTreeAndRingAreZero) {
  EXPECT_DOUBLE_EQ(clustering_coefficient(star(5)), 0.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(ring(8)), 0.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(path(6)), 0.0);
}

TEST(Metrics, ClusteringTriangleWithTail) {
  // Triangle 0-1-2 plus pendant 3 attached to 0.
  UndirectedGraph g(4, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  // Local: node0 neighbours {1,2,3}: one edge of three possible = 1/3;
  // node1 and node2: 1; node3: degree 1 -> 0. Mean = (1/3+1+1+0)/4.
  EXPECT_NEAR(clustering_coefficient(g), (1.0 / 3 + 2.0) / 4, 1e-12);
  EXPECT_NEAR(local_clustering(g, 0), 1.0 / 3, 1e-12);
  EXPECT_DOUBLE_EQ(local_clustering(g, 3), 0.0);
}

TEST(Metrics, ClusteringSampledMatchesExactOnLargeSample) {
  Rng rng(1);
  const auto g = random_view_graph(300, 8, rng);
  Rng sample_rng(2);
  EXPECT_DOUBLE_EQ(clustering_coefficient_sampled(g, 300, sample_rng),
                   clustering_coefficient(g));
  Rng sample_rng2(3);
  EXPECT_NEAR(clustering_coefficient_sampled(g, 150, sample_rng2),
              clustering_coefficient(g), 0.02);
}

TEST(Metrics, BfsDistancesOnPath) {
  const auto d = bfs_distances(path(5), 0);
  for (std::uint32_t v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Metrics, BfsUnreachableMarked) {
  UndirectedGraph g(4, {{0, 1}, {2, 3}});
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Metrics, PathLengthCompleteGraphIsOne) {
  const auto r = average_path_length(complete(7));
  EXPECT_DOUBLE_EQ(r.average, 1.0);
  EXPECT_DOUBLE_EQ(r.reachable_fraction, 1.0);
  EXPECT_EQ(r.diameter, 1u);
}

TEST(Metrics, PathLengthRingClosedForm) {
  // Even ring of n=8: distances from any vertex: 1,1,2,2,3,3,4 -> mean 16/7.
  const auto r = average_path_length(ring(8));
  EXPECT_NEAR(r.average, 16.0 / 7.0, 1e-12);
  EXPECT_EQ(r.diameter, 4u);
}

TEST(Metrics, PathLengthStar) {
  // Star with 4 leaves: hub<->leaf = 1 (8 ordered pairs), leaf<->leaf = 2
  // (12 ordered pairs); mean = (8*1 + 12*2)/20 = 1.6.
  const auto r = average_path_length(star(4));
  EXPECT_NEAR(r.average, 1.6, 1e-12);
}

TEST(Metrics, PathLengthDisconnectedReportsReachableFraction) {
  UndirectedGraph g(4, {{0, 1}, {2, 3}});
  const auto r = average_path_length(g);
  EXPECT_DOUBLE_EQ(r.average, 1.0);
  EXPECT_NEAR(r.reachable_fraction, 4.0 / 12.0, 1e-12);
}

TEST(Metrics, PathLengthSampledExactWhenSamplesCoverAll) {
  const auto g = ring(12);
  Rng rng(5);
  const auto exact = average_path_length(g);
  const auto sampled = average_path_length_sampled(g, 12, rng);
  EXPECT_DOUBLE_EQ(sampled.average, exact.average);
}

TEST(Metrics, PathLengthSampledCloseToExact) {
  Rng rng(6);
  const auto g = random_view_graph(500, 6, rng);
  const auto exact = average_path_length(g);
  Rng sample_rng(7);
  const auto sampled = average_path_length_sampled(g, 60, sample_rng);
  EXPECT_NEAR(sampled.average, exact.average, 0.05 * exact.average);
}

TEST(Metrics, ComponentsConnectedGraph) {
  const auto info = connected_components(ring(9));
  EXPECT_TRUE(info.connected());
  EXPECT_EQ(info.count, 1u);
  EXPECT_EQ(info.largest, 9u);
  EXPECT_EQ(info.outside_largest(), 0u);
}

TEST(Metrics, ComponentsDisjointUnion) {
  // Ring(3) + path(2) + isolated vertex.
  UndirectedGraph g(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}});
  const auto info = connected_components(g);
  EXPECT_EQ(info.count, 3u);
  EXPECT_EQ(info.largest, 3u);
  EXPECT_EQ(info.sizes, (std::vector<std::size_t>{3, 2, 1}));
  EXPECT_EQ(info.outside_largest(), 3u);
  // Labels consistent: same component same label.
  EXPECT_EQ(info.label[0], info.label[1]);
  EXPECT_EQ(info.label[3], info.label[4]);
  EXPECT_NE(info.label[0], info.label[3]);
  EXPECT_NE(info.label[0], info.label[5]);
}

TEST(Metrics, ComponentsEmptyGraph) {
  const auto info = connected_components(UndirectedGraph(0, {}));
  EXPECT_EQ(info.count, 0u);
  EXPECT_EQ(info.largest, 0u);
}

}  // namespace
}  // namespace pss::graph
