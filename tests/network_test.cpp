// Unit tests for the network registry: node lifecycle, liveness, dead-link
// accounting, and random kills.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "pss/sim/network.hpp"

namespace pss::sim {
namespace {

Network make(std::size_t n, std::uint64_t seed = 1) {
  Network net(ProtocolSpec::newscast(), ProtocolOptions{5, false}, seed);
  if (n > 0) net.add_nodes(n);
  return net;
}

TEST(Network, AddNodesAssignsDenseIds) {
  auto net = make(0);
  EXPECT_EQ(net.add_node(), 0u);
  EXPECT_EQ(net.add_node(), 1u);
  EXPECT_EQ(net.add_nodes(3), 2u);
  EXPECT_EQ(net.size(), 5u);
  EXPECT_EQ(net.live_count(), 5u);
}

TEST(Network, NodeAccessorsValidateRange) {
  auto net = make(2);
  EXPECT_NO_THROW(net.node(1));
  EXPECT_THROW(net.node(2), std::logic_error);
  const auto& cnet = net;
  EXPECT_THROW(cnet.node(7), std::logic_error);
}

TEST(Network, NewNodesAreLiveWithEmptyViews) {
  auto net = make(3);
  for (NodeId id = 0; id < 3; ++id) {
    EXPECT_TRUE(net.is_live(id));
    EXPECT_TRUE(net.node(id).view().empty());
    EXPECT_EQ(net.node(id).self(), id);
  }
  EXPECT_FALSE(net.is_live(99));  // out of range is simply not live
}

TEST(Network, KillAndReviveTrackLiveCount) {
  auto net = make(4);
  net.kill(1);
  net.kill(1);  // idempotent
  EXPECT_FALSE(net.is_live(1));
  EXPECT_EQ(net.live_count(), 3u);
  net.revive(1);
  EXPECT_TRUE(net.is_live(1));
  EXPECT_EQ(net.live_count(), 4u);
}

TEST(Network, ReviveClearsView) {
  auto net = make(3);
  net.node(1).set_view(View{{0, 1}, {2, 2}});
  net.kill(1);
  net.revive(1);
  EXPECT_TRUE(net.node(1).view().empty());
}

TEST(Network, LiveNodesListsAscendingSurvivors) {
  auto net = make(5);
  net.kill(0);
  net.kill(3);
  EXPECT_EQ(net.live_nodes(), (std::vector<NodeId>{1, 2, 4}));
}

TEST(Network, KillRandomKillsExactCount) {
  auto net = make(50, 9);
  Rng rng(4);
  net.kill_random(20, rng);
  EXPECT_EQ(net.live_count(), 30u);
  EXPECT_THROW(net.kill_random(31, rng), std::logic_error);
}

TEST(Network, KillRandomIsUniformish) {
  // Over many trials, each node should be killed roughly half the time.
  std::vector<int> killed(10, 0);
  for (int trial = 0; trial < 400; ++trial) {
    auto net = make(10, trial);
    Rng rng(trial * 7 + 1);
    net.kill_random(5, rng);
    for (NodeId id = 0; id < 10; ++id) {
      if (!net.is_live(id)) ++killed[id];
    }
  }
  for (int k : killed) EXPECT_NEAR(k, 200, 60);
}

TEST(Network, CountDeadLinksOnlyCountsLiveViewsPointingAtDead) {
  auto net = make(4);
  net.node(0).set_view(View{{1, 1}, {2, 1}});
  net.node(1).set_view(View{{2, 1}, {3, 1}});
  net.node(2).set_view(View{{3, 1}});
  EXPECT_EQ(net.count_dead_links(), 0u);
  net.kill(2);
  // node0 -> 2 (dead), node1 -> 2 (dead); node2's own view is ignored.
  EXPECT_EQ(net.count_dead_links(), 2u);
  net.kill(3);
  // additionally node1 -> 3; dead node2's link to dead 3 not counted.
  EXPECT_EQ(net.count_dead_links(), 3u);
}

TEST(Network, NodesInheritSpecAndOptions) {
  Network net(ProtocolSpec::lpbcast(), ProtocolOptions{17, true}, 5);
  const NodeId id = net.add_node();
  EXPECT_EQ(net.node(id).spec(), ProtocolSpec::lpbcast());
  EXPECT_EQ(net.node(id).options().view_size, 17u);
  EXPECT_TRUE(net.node(id).options().remove_dead_on_failure);
}

TEST(Network, NodeRngsAreIndependent) {
  auto net = make(2, 123);
  // Two nodes with rand peer selection over the same view should not make
  // identical choices forever (their RNG streams are split).
  net.node(0).set_view(View{{2, 1}, {3, 1}, {4, 1}, {5, 1}});
  net.node(1).set_view(View{{2, 1}, {3, 1}, {4, 1}, {5, 1}});
  // Ensure enough extra nodes exist for addressing sanity.
  std::set<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 30; ++i) {
    pairs.insert({*net.node(0).select_peer(), *net.node(1).select_peer()});
  }
  EXPECT_GT(pairs.size(), 3u);
}

TEST(Network, LiveIdPoolSurvivesRandomizedMembershipStorm) {
  // The incremental swap-remove pool (live_ids) must agree with a naive
  // recomputed live list after ANY interleaving of add/kill/revive — the
  // pool is order-unspecified, so compare as sorted sets plus invariants.
  auto net = make(8, 99);
  std::vector<bool> naive(8, true);
  Rng rng(100);
  for (int op = 0; op < 1500; ++op) {
    const std::uint64_t pick = rng.below(10);
    if (pick < 2) {  // add
      const NodeId id = net.add_node();
      ASSERT_EQ(id, naive.size());
      naive.push_back(true);
    } else if (pick < 6) {  // kill a random slot (maybe already dead)
      const NodeId id =
          static_cast<NodeId>(rng.below(naive.size()));
      net.kill(id);
      naive[id] = false;
    } else if (pick < 9) {  // revive a random slot (maybe already live)
      const NodeId id =
          static_cast<NodeId>(rng.below(naive.size()));
      net.revive(id);
      naive[id] = true;
    } else if (net.live_count() > 0) {  // random sampled kills via the pool
      const std::size_t count = 1 + rng.below(net.live_count());
      net.kill_random(count, rng);
      for (NodeId id = 0; id < naive.size(); ++id) {
        naive[id] = net.is_live(id);
      }
    }
    // Cross-check the pool against the naive scan every step.
    ASSERT_EQ(net.size(), naive.size());
    std::vector<NodeId> expected;
    for (NodeId id = 0; id < naive.size(); ++id) {
      if (naive[id]) expected.push_back(id);
      ASSERT_EQ(net.is_live(id), naive[id]) << "op " << op << " node " << id;
    }
    const auto pool = net.live_ids();
    std::vector<NodeId> actual(pool.begin(), pool.end());
    std::sort(actual.begin(), actual.end());
    ASSERT_EQ(actual, expected) << "op " << op;  // once each, no ghosts
    ASSERT_EQ(net.live_count(), expected.size());
    ASSERT_EQ(net.live_nodes(), expected);  // the O(N) path agrees too
  }
}

}  // namespace
}  // namespace pss::sim
