// The streaming observability contract, in three parts:
//   1. Equivalence — GraphCensus observables vs the exact graph::metrics
//      pipeline on the same snapshots: bit-equal degree histograms,
//      summaries and component structure; sampled estimators reproduce the
//      exact module's estimators draw-for-draw from a cloned Rng, and stay
//      within documented error bounds of the fully exact values.
//   2. Probe cadence — attach_probe fires at exactly the promised
//      cycle/tick multiples on all three engines.
//   3. Non-perturbation — a run with a StreamingObserver attached ends in a
//      bit-identical network state (views, liveness, per-node stats and Rng
//      stream positions) and engine stats as a run without probes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "pss/experiments/degree_trace.hpp"
#include "pss/graph/metrics.hpp"
#include "pss/graph/undirected_graph.hpp"
#include "pss/obs/degree_autocorrelation.hpp"
#include "pss/obs/graph_census.hpp"
#include "pss/obs/streaming_observer.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/sim/event_engine.hpp"
#include "pss/sim/network.hpp"
#include "pss/sim/parallel_cycle_engine.hpp"
#include "pss/stats/autocorrelation.hpp"

namespace pss {
namespace {

sim::Network make_converged(ProtocolSpec spec, std::size_t n, Cycle cycles,
                            std::uint64_t seed = 42) {
  sim::Network net(spec, ProtocolOptions{8, false}, seed);
  net.add_nodes(n);
  sim::bootstrap::init_random(net);
  sim::CycleEngine engine(net);
  engine.run(cycles);
  return net;
}

/// Census vs exact pipeline on one snapshot: everything streamed must be
/// bit-equal (integers and doubles alike — the census mirrors the exact
/// module's accumulation order).
void expect_census_matches_exact(const sim::Network& net) {
  obs::GraphCensus census;
  census.rebuild(net);
  const auto g = graph::UndirectedGraph::from_network(net);

  ASSERT_EQ(census.live_count(), g.vertex_count());
  EXPECT_EQ(census.undirected_edge_count(), g.edge_count());

  // Per-node degrees (union graph).
  for (std::uint32_t v = 0; v < g.vertex_count(); ++v) {
    const NodeId addr = g.address_of(v);
    EXPECT_EQ(census.undirected_degree(addr), g.degree(v));
  }

  // Histogram: bit-equal, including size (= max degree + 1).
  const auto exact_hist = graph::degree_histogram(g);
  const auto hist = census.degree_histogram();
  ASSERT_EQ(hist.size(), exact_hist.size());
  for (std::size_t d = 0; d < hist.size(); ++d) {
    EXPECT_EQ(hist[d], exact_hist[d]) << "degree " << d;
  }

  // Summary: bit-equal doubles (same accumulation order).
  const auto exact_sum = graph::degree_summary(g);
  EXPECT_EQ(census.degree_stats().min, exact_sum.min);
  EXPECT_EQ(census.degree_stats().max, exact_sum.max);
  EXPECT_EQ(census.degree_stats().mean, exact_sum.mean);
  EXPECT_EQ(census.degree_stats().variance, exact_sum.variance);

  // Components: count, largest, full size multiset.
  const auto exact_comp = graph::connected_components(g);
  EXPECT_EQ(census.components().count, exact_comp.count);
  EXPECT_EQ(census.components().largest, exact_comp.largest);
  EXPECT_EQ(census.components().outside_largest, exact_comp.outside_largest());
  const auto sizes = census.component_sizes();
  ASSERT_EQ(sizes.size(), exact_comp.sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], exact_comp.sizes[i]);
  }
}

TEST(GraphCensus, MatchesExactPipelineAcrossProtocols) {
  for (const auto& spec : ProtocolSpec::evaluated()) {
    sim::Network net = make_converged(spec, 500, 20);
    SCOPED_TRACE(spec.name());
    expect_census_matches_exact(net);
  }
}

TEST(GraphCensus, MatchesExactWithDeadNodesAndDeadLinks) {
  sim::Network net = make_converged(ProtocolSpec::newscast(), 600, 15);
  net.kill_random(150, net.rng());  // views now carry dead links
  expect_census_matches_exact(net);

  // Keep gossiping over the damaged overlay, then re-check.
  sim::CycleEngine engine(net);
  engine.run(5);
  expect_census_matches_exact(net);
}

TEST(GraphCensus, MatchesExactOnFragmentedOverlay) {
  // Kill enough of a sparse overlay to fragment it: component accounting
  // must agree with exact union-find on a multi-component graph.
  sim::Network net(ProtocolSpec::newscast(), ProtocolOptions{3, false}, 7);
  net.add_nodes(300);
  sim::bootstrap::init_random(net);
  sim::CycleEngine engine(net);
  engine.run(10);
  net.kill_random(200, net.rng());
  obs::GraphCensus census;
  census.rebuild(net);
  const auto g = graph::UndirectedGraph::from_network(net);
  EXPECT_EQ(census.components().count, graph::connected_components(g).count);
  expect_census_matches_exact(net);
}

TEST(GraphCensus, EmptyAndTinyNetworks) {
  sim::Network net(ProtocolSpec::newscast(), ProtocolOptions{4, false}, 1);
  obs::GraphCensus census;
  census.rebuild(net);
  EXPECT_EQ(census.live_count(), 0u);
  EXPECT_EQ(census.components().count, 0u);
  EXPECT_EQ(census.degree_histogram().size(), 1u);

  net.add_node();  // one isolated node
  census.rebuild(net);
  EXPECT_EQ(census.live_count(), 1u);
  EXPECT_EQ(census.components().count, 1u);
  EXPECT_EQ(census.components().largest, 1u);
  EXPECT_EQ(census.undirected_degree(0), 0u);
}

TEST(GraphCensus, RebuildReusesBuffersAcrossSnapshots) {
  // The same census object must stay correct when reused over an evolving
  // network (stale state from earlier snapshots must never leak).
  sim::Network net = make_converged(ProtocolSpec::newscast(), 400, 5);
  obs::GraphCensus census;
  sim::CycleEngine engine(net);
  for (int i = 0; i < 4; ++i) {
    engine.run(3);
    census.rebuild(net);
    const auto g = graph::UndirectedGraph::from_network(net);
    ASSERT_EQ(census.undirected_edge_count(), g.edge_count());
    ASSERT_EQ(census.degree_stats().mean, graph::degree_summary(g).mean);
  }
  net.kill_random(100, net.rng());
  expect_census_matches_exact(net);
}

TEST(GraphCensus, DeadLinkTallyIsBitEqualToNetworkCount) {
  // The dead-link tally folded into census pass 1 must agree exactly with
  // Network::count_dead_links on every overlay shape: clean, churned, and
  // after further gossip over the damaged views.
  sim::Network net = make_converged(ProtocolSpec::newscast(), 600, 15);
  obs::GraphCensus census;
  census.rebuild(net);
  EXPECT_EQ(census.dead_link_count(), 0u);
  EXPECT_EQ(census.dead_link_count(), net.count_dead_links());

  net.kill_random(200, net.rng());
  census.rebuild(net);
  EXPECT_GT(census.dead_link_count(), 0u);
  EXPECT_EQ(census.dead_link_count(), net.count_dead_links());

  sim::CycleEngine engine(net);
  engine.run(4);
  census.rebuild(net);
  EXPECT_EQ(census.dead_link_count(), net.count_dead_links());
  EXPECT_EQ(census.cross_partition_link_count(), 0u);  // no partitions
}

TEST(GraphCensus, CrossPartitionTallyIsBitEqualToNetworkCount) {
  sim::Network net = make_converged(ProtocolSpec::newscast(), 500, 20);
  // Split the converged overlay down the middle: cross-group view entries
  // are exactly the pre-split links between halves.
  for (NodeId id = 0; id < net.size(); ++id) {
    net.set_partition_group(id, id % 2);
  }
  obs::GraphCensus census;
  census.rebuild(net);
  EXPECT_GT(census.cross_partition_link_count(), 0u);
  EXPECT_EQ(census.cross_partition_link_count(),
            net.count_cross_partition_links());

  // Kill some nodes: dead targets leave the cross tally (they are dead
  // links now) — both counters must track the reclassification identically.
  net.kill_random(120, net.rng());
  census.rebuild(net);
  EXPECT_EQ(census.dead_link_count(), net.count_dead_links());
  EXPECT_EQ(census.cross_partition_link_count(),
            net.count_cross_partition_links());

  // Gossip within the split, then heal it: the cross tally must collapse
  // to zero through the same code path that computed it.
  sim::CycleEngine engine(net);
  engine.run(5);
  census.rebuild(net);
  EXPECT_EQ(census.dead_link_count(), net.count_dead_links());
  EXPECT_EQ(census.cross_partition_link_count(),
            net.count_cross_partition_links());
  net.clear_partitions();
  census.rebuild(net);
  EXPECT_EQ(census.cross_partition_link_count(), 0u);
  EXPECT_EQ(census.cross_partition_link_count(),
            net.count_cross_partition_links());
}

TEST(GraphCensus, SampledClusteringReproducesExactModuleDrawForDraw) {
  sim::Network net = make_converged(ProtocolSpec::newscast(), 800, 25);
  obs::GraphCensus census;
  census.rebuild(net);
  const auto g = graph::UndirectedGraph::from_network(net);

  Rng streaming_rng(1234);
  Rng exact_rng(1234);
  const double streamed = census.clustering_sampled(200, streaming_rng);
  const double exact = graph::clustering_coefficient_sampled(g, 200, exact_rng);
  EXPECT_EQ(streamed, exact);

  // Exhaustive sample: equals the fully exact coefficient, rng untouched.
  Rng unused(99);
  EXPECT_EQ(census.clustering_sampled(10'000, unused),
            graph::clustering_coefficient(g));
}

TEST(GraphCensus, SampledClusteringWithinErrorBoundOfExact) {
  sim::Network net = make_converged(ProtocolSpec::newscast(), 1000, 30);
  obs::GraphCensus census;
  census.rebuild(net);
  const auto g = graph::UndirectedGraph::from_network(net);
  const double exact = graph::clustering_coefficient(g);
  Rng rng(5);
  // Documented bound (docs/ARCHITECTURE.md): a 300-vertex sample of a
  // 10^3-node overlay stays within ±0.05 absolute of the exact coefficient.
  EXPECT_NEAR(census.clustering_sampled(300, rng), exact, 0.05);
}

TEST(GraphCensus, SampledPathLengthReproducesExactModuleDrawForDraw) {
  sim::Network net = make_converged(ProtocolSpec::newscast(), 800, 25);
  obs::GraphCensus census;
  census.rebuild(net);
  const auto g = graph::UndirectedGraph::from_network(net);

  Rng streaming_rng(777);
  Rng exact_rng(777);
  const auto streamed = census.path_length_sampled(40, streaming_rng);
  const auto exact = graph::average_path_length_sampled(g, 40, exact_rng);
  EXPECT_EQ(streamed.average, exact.average);
  EXPECT_EQ(streamed.reachable_fraction, exact.reachable_fraction);
  EXPECT_EQ(streamed.diameter, exact.diameter);

  // Exhaustive: equals the all-sources exact result, rng untouched.
  Rng unused(99);
  const auto all = census.path_length_sampled(10'000, unused);
  const auto exact_all = graph::average_path_length(g);
  EXPECT_EQ(all.average, exact_all.average);
  EXPECT_EQ(all.reachable_fraction, exact_all.reachable_fraction);
  EXPECT_EQ(all.diameter, exact_all.diameter);
}

TEST(GraphCensus, SampledPathLengthWithinErrorBoundOfExact) {
  sim::Network net = make_converged(ProtocolSpec::newscast(), 1000, 30);
  obs::GraphCensus census;
  census.rebuild(net);
  const auto g = graph::UndirectedGraph::from_network(net);
  const auto exact = graph::average_path_length(g);
  Rng rng(11);
  // Documented bound: 32 BFS sources estimate the all-pairs mean within 5%
  // relative on a connected small-world overlay.
  const auto est = census.path_length_sampled(32, rng);
  EXPECT_NEAR(est.average, exact.average, 0.05 * exact.average);
  // The c=8 overlay can carry a few stragglers outside the giant
  // component; the sampled fraction tracks the exact one.
  EXPECT_NEAR(est.reachable_fraction, exact.reachable_fraction, 0.05);
}

TEST(GraphCensus, PathLengthOnDisconnectedOverlayCountsReachablePairsOnly) {
  sim::Network net(ProtocolSpec::newscast(), ProtocolOptions{3, false}, 7);
  net.add_nodes(300);
  sim::bootstrap::init_random(net);
  sim::CycleEngine engine(net);
  engine.run(10);
  net.kill_random(200, net.rng());
  obs::GraphCensus census;
  census.rebuild(net);
  if (census.components().count < 2) GTEST_SKIP() << "overlay stayed connected";
  const auto g = graph::UndirectedGraph::from_network(net);
  const auto exact = graph::average_path_length(g);
  Rng unused(3);
  const auto est = census.path_length_sampled(census.live_count(), unused);
  EXPECT_EQ(est.average, exact.average);
  EXPECT_EQ(est.reachable_fraction, exact.reachable_fraction);
  EXPECT_LT(est.reachable_fraction, 1.0);
}

TEST(GraphCensusParallel, RebuildBitEqualToSequentialAtEveryLaneCount) {
  // The set_thread_pool contract: every streamed observable is
  // bit-identical to the sequential rebuild at any lane count, including
  // on an overlay with dead links and cross-partition links so all three
  // pass-1 tallies are non-trivial.
  auto net = make_converged(ProtocolSpec::newscast(), 400, 12, 19);
  net.kill_random(60, net.rng());
  for (NodeId id = 0; id < net.size(); ++id) {
    net.set_partition_group(id, id % 2);
  }
  obs::GraphCensus seq;
  seq.rebuild(net);
  for (unsigned threads : {2u, 4u, 8u}) {
    sim::ThreadPool pool(threads);
    obs::GraphCensus par;
    par.set_thread_pool(&pool);
    par.rebuild(net);
    ASSERT_EQ(seq.live_count(), par.live_count());
    EXPECT_EQ(seq.directed_edge_count(), par.directed_edge_count());
    EXPECT_EQ(seq.undirected_edge_count(), par.undirected_edge_count());
    EXPECT_EQ(seq.dead_link_count(), par.dead_link_count());
    EXPECT_EQ(seq.cross_partition_link_count(),
              par.cross_partition_link_count());
    for (const NodeId id : seq.live_list()) {
      ASSERT_EQ(seq.out_degree(id), par.out_degree(id));
      ASSERT_EQ(seq.in_degree(id), par.in_degree(id));
      ASSERT_EQ(seq.undirected_degree(id), par.undirected_degree(id));
    }
    const auto sh = seq.degree_histogram();
    const auto ph = par.degree_histogram();
    ASSERT_EQ(sh.size(), ph.size());
    EXPECT_TRUE(std::equal(sh.begin(), sh.end(), ph.begin()));
    EXPECT_EQ(seq.degree_stats().mean, par.degree_stats().mean);
    EXPECT_EQ(seq.degree_stats().variance, par.degree_stats().variance);
    EXPECT_EQ(seq.components().count, par.components().count);
    EXPECT_EQ(seq.components().largest, par.components().largest);
  }
}

TEST(GraphCensusParallel, EstimatorsBitEqualToSequentialAtEveryLaneCount) {
  // Sampled estimators from cloned Rngs: same draws, same per-pick values,
  // same reductions — doubles compare with EXPECT_EQ, not near.
  auto net = make_converged(ProtocolSpec::newscast(), 350, 12, 23);
  net.kill_random(40, net.rng());
  obs::GraphCensus seq;
  seq.rebuild(net);
  Rng seq_rng(77);
  const double seq_clust = seq.clustering_sampled(64, seq_rng);
  const double seq_clust_exact = seq.clustering_sampled(seq.live_count(),
                                                        seq_rng);
  const std::uint32_t seq_probe = seq_rng.below(1u << 20);
  Rng seq_path_rng(78);
  const auto seq_path = seq.path_length_sampled(32, seq_path_rng);
  const auto seq_path_full =
      seq.path_length_sampled(seq.live_count(), seq_path_rng);
  for (unsigned threads : {2u, 4u, 8u}) {
    sim::ThreadPool pool(threads);
    obs::GraphCensus par;
    par.set_thread_pool(&pool);
    par.rebuild(net);
    Rng par_rng(77);
    EXPECT_EQ(seq_clust, par.clustering_sampled(64, par_rng));
    EXPECT_EQ(seq_clust_exact,
              par.clustering_sampled(par.live_count(), par_rng));
    Rng par_path_rng(78);
    const auto par_path = par.path_length_sampled(32, par_path_rng);
    EXPECT_EQ(seq_path.average, par_path.average);
    EXPECT_EQ(seq_path.reachable_fraction, par_path.reachable_fraction);
    EXPECT_EQ(seq_path.diameter, par_path.diameter);
    const auto par_path_full =
        par.path_length_sampled(par.live_count(), par_path_rng);
    EXPECT_EQ(seq_path_full.average, par_path_full.average);
    EXPECT_EQ(seq_path_full.reachable_fraction,
              par_path_full.reachable_fraction);
    EXPECT_EQ(seq_path_full.diameter, par_path_full.diameter);
    // The Rng clones must sit at the same stream position afterwards.
    EXPECT_EQ(seq_probe, par_rng.below(1u << 20));
  }
}

TEST(DegreeAutocorrelation, TracksPanelDegreesAndMatchesStatsModule) {
  sim::Network net = make_converged(ProtocolSpec::newscast(), 300, 10);
  const std::vector<NodeId> panel = {3, 77, 150};
  obs::DegreeAutocorrelation tracker(panel, 20);
  obs::GraphCensus census;
  sim::CycleEngine engine(net);

  std::vector<std::vector<double>> expected(panel.size());
  for (Cycle t = 0; t < 20; ++t) {
    engine.run_cycle();
    census.rebuild(net);
    tracker.record(census);
    for (std::size_t i = 0; i < panel.size(); ++i) {
      expected[i].push_back(
          static_cast<double>(census.undirected_degree(panel[i])));
    }
  }
  ASSERT_EQ(tracker.recorded_cycles(), 20u);
  for (std::size_t i = 0; i < panel.size(); ++i) {
    const auto series = tracker.series(i);
    ASSERT_EQ(series.size(), expected[i].size());
    for (std::size_t t = 0; t < series.size(); ++t) {
      EXPECT_EQ(series[t], expected[i][t]);
    }
    const auto r = tracker.autocorrelation(i, 5);
    const auto want = stats::autocorrelation(expected[i], 5);
    ASSERT_EQ(r.size(), want.size());
    for (std::size_t k = 0; k < r.size(); ++k) EXPECT_EQ(r[k], want[k]);
  }
  EXPECT_DOUBLE_EQ(tracker.autocorrelation(0, 3)[0], 1.0);

  // Recording past capacity is an explicit no-op.
  tracker.record(census);
  EXPECT_EQ(tracker.recorded_cycles(), 20u);
}

TEST(DegreeTrace, StreamingPathMatchesLegacyExactPath) {
  // The degree-trace experiment ported onto the census must reproduce the
  // legacy UndirectedGraph-per-cycle path number for number.
  experiments::ScenarioParams params;
  params.n = 300;
  params.view_size = 8;
  params.cycles = 10;
  params.seed = 21;

  const auto streaming = experiments::run_degree_trace(
      ProtocolSpec::newscast(), params, /*traced=*/4, /*trace_cycles=*/8);
  params.exact_metrics = true;
  const auto exact = experiments::run_degree_trace(
      ProtocolSpec::newscast(), params, /*traced=*/4, /*trace_cycles=*/8);

  ASSERT_EQ(streaming.series.size(), exact.series.size());
  for (std::size_t i = 0; i < streaming.series.size(); ++i) {
    ASSERT_EQ(streaming.series[i].size(), exact.series[i].size());
    for (std::size_t t = 0; t < streaming.series[i].size(); ++t) {
      EXPECT_EQ(streaming.series[i][t], exact.series[i][t]);
    }
  }
  EXPECT_DOUBLE_EQ(streaming.final_avg_degree, exact.final_avg_degree);
}

// --- Probe cadence ----------------------------------------------------------

class CountingProbe final : public sim::SnapshotProbe {
 public:
  void on_snapshot(const sim::Network& network, Cycle cycle) override {
    fired.push_back(cycle);
    live_seen.push_back(network.live_count());
  }
  std::vector<Cycle> fired;
  std::vector<std::size_t> live_seen;
};

TEST(SnapshotProbe, CycleEngineCadence) {
  sim::Network net = make_converged(ProtocolSpec::newscast(), 100, 0);
  sim::CycleEngine engine(net);
  CountingProbe every, third;
  engine.attach_probe(every);
  engine.attach_probe(third, 3);
  engine.run(10);
  EXPECT_EQ(every.fired,
            (std::vector<Cycle>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
  EXPECT_EQ(third.fired, (std::vector<Cycle>{3, 6, 9}));
}

TEST(SnapshotProbe, ParallelCycleEngineCadence) {
  sim::Network net = make_converged(ProtocolSpec::newscast(), 100, 0);
  sim::ParallelCycleEngine engine(
      net, {/*threads=*/3, sim::ParallelPolicy::kDeterministic});
  CountingProbe probe;
  engine.attach_probe(probe, 2);
  engine.run(7);
  EXPECT_EQ(probe.fired, (std::vector<Cycle>{2, 4, 6}));
}

TEST(SnapshotProbe, EventEngineTickCadenceAccumulatesAcrossCalls) {
  sim::Network net = make_converged(ProtocolSpec::newscast(), 100, 0);
  sim::EventEngine engine(net, {});
  CountingProbe probe;
  engine.attach_probe(probe, 2);
  engine.run_cycles(5);
  EXPECT_EQ(probe.fired, (std::vector<Cycle>{2, 4}));
  engine.run_cycles(3);  // lifetime ticks 6, 7, 8
  EXPECT_EQ(probe.fired, (std::vector<Cycle>{2, 4, 6, 8}));
}

// --- Non-perturbation -------------------------------------------------------

/// FNV-1a over liveness, views, per-node counters and Rng stream positions
/// (the scale_parallel digest): equal digests <=> equal final states.
std::uint64_t state_digest(const sim::Network& net) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  const flat::NodeArena& arena = net.arena();
  for (NodeId id = 0; id < net.size(); ++id) {
    const auto view = net.view_span(id);
    mix((static_cast<std::uint64_t>(view.size()) << 1) |
        (net.is_live(id) ? 1 : 0));
    for (const auto& d : view) {
      mix((static_cast<std::uint64_t>(d.hop_count) << 32) | d.address);
    }
    const NodeStats& s = arena.stats[id];
    mix(s.initiated);
    mix(s.received);
    mix(s.replies_sent);
    mix(s.contact_failures);
    Rng probe_rng = arena.rngs[id];
    mix(probe_rng());
  }
  return h;
}

TEST(SnapshotProbe, ObserverDoesNotPerturbCycleEngine) {
  sim::Network plain = make_converged(ProtocolSpec::newscast(), 400, 0, 9);
  sim::Network observed = make_converged(ProtocolSpec::newscast(), 400, 0, 9);
  ASSERT_EQ(state_digest(plain), state_digest(observed));

  sim::CycleEngine plain_engine(plain);
  sim::CycleEngine observed_engine(observed);
  obs::StreamingObserver observer({/*clustering_sample=*/50,
                                   /*path_sources=*/4, /*seed=*/123,
                                   /*reserve_records=*/16});
  observed_engine.attach_probe(observer);
  plain_engine.run(12);
  observed_engine.run(12);

  EXPECT_EQ(observer.records().size(), 12u);
  EXPECT_EQ(state_digest(plain), state_digest(observed));
  EXPECT_EQ(plain_engine.stats().exchanges, observed_engine.stats().exchanges);
  EXPECT_EQ(plain_engine.stats().failed_contacts,
            observed_engine.stats().failed_contacts);
}

TEST(SnapshotProbe, ObserverDoesNotPerturbParallelCycleEngine) {
  sim::Network plain = make_converged(ProtocolSpec::newscast(), 400, 0, 9);
  sim::Network observed = make_converged(ProtocolSpec::newscast(), 400, 0, 9);

  sim::ParallelCycleEngine plain_engine(
      plain, {/*threads=*/4, sim::ParallelPolicy::kDeterministic});
  sim::ParallelCycleEngine observed_engine(
      observed, {/*threads=*/4, sim::ParallelPolicy::kDeterministic});
  obs::StreamingObserver observer({/*clustering_sample=*/50,
                                   /*path_sources=*/4, /*seed=*/123,
                                   /*reserve_records=*/16});
  observed_engine.attach_probe(observer, 3);
  plain_engine.run(9);
  observed_engine.run(9);

  EXPECT_EQ(observer.records().size(), 3u);
  EXPECT_EQ(state_digest(plain), state_digest(observed));
}

TEST(SnapshotProbe, ObserverDoesNotPerturbEventEngine) {
  // Also pins that the tick-by-tick advance the probe path uses replays
  // the exact event sequence of the probe-free single-target advance.
  sim::Network plain = make_converged(ProtocolSpec::newscast(), 300, 0, 9);
  sim::Network observed = make_converged(ProtocolSpec::newscast(), 300, 0, 9);

  sim::EventEngineConfig config;
  config.drop_probability = 0.05;
  sim::EventEngine plain_engine(plain, config);
  sim::EventEngine observed_engine(observed, config);
  obs::StreamingObserver observer({/*clustering_sample=*/50,
                                   /*path_sources=*/4, /*seed=*/123,
                                   /*reserve_records=*/16});
  observed_engine.attach_probe(observer, 2);
  plain_engine.run_cycles(8);
  observed_engine.run_cycles(8);

  EXPECT_EQ(observer.records().size(), 4u);
  EXPECT_EQ(plain_engine.now(), observed_engine.now());
  EXPECT_EQ(state_digest(plain), state_digest(observed));
  EXPECT_EQ(plain_engine.stats().wakeups, observed_engine.stats().wakeups);
  EXPECT_EQ(plain_engine.stats().messages_sent,
            observed_engine.stats().messages_sent);
  EXPECT_EQ(plain_engine.stats().messages_dropped,
            observed_engine.stats().messages_dropped);
}

TEST(StreamingObserver, RecordsStreamTheExpectedObservables) {
  sim::Network net = make_converged(ProtocolSpec::newscast(), 500, 10);
  sim::CycleEngine engine(net);
  obs::StreamingObserver observer({/*clustering_sample=*/100,
                                   /*path_sources=*/8, /*seed=*/7,
                                   /*reserve_records=*/8});
  engine.attach_probe(observer, 2);
  engine.run(6);

  ASSERT_EQ(observer.records().size(), 3u);
  const auto& rec = observer.latest();
  EXPECT_EQ(rec.cycle, 6u);
  EXPECT_EQ(rec.live, 500u);
  EXPECT_GT(rec.degree.mean, 0.0);
  EXPECT_GE(rec.degree.max, rec.degree.min);
  EXPECT_EQ(rec.components.count, 1u);
  EXPECT_EQ(rec.components.largest, 500u);
  EXPECT_GT(rec.clustering, 0.0);
  EXPECT_GT(rec.path.average, 1.0);
  // Out-degree can never exceed the view capacity; the union degree can.
  EXPECT_LE(rec.out_degree.max, 8u);
  EXPECT_GE(rec.degree.max, rec.out_degree.max);
}

}  // namespace
}  // namespace pss
