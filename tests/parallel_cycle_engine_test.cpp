// Equivalence and safety tests for the sharded parallel cycle engine.
//
// The Deterministic policy's contract is bit-identity with the sequential
// CycleEngine — same per-node views, same NodeStats, same EngineStats, same
// master/per-node Rng consumption — at ANY thread count. The replays below
// pin it across all 8 evaluated protocol instances, under kills, revives,
// partitions, empty views and a hub topology that degrades the scheduler
// to batch size 1. The Relaxed policy trades that guarantee for scan-free
// scaling; its tests pin what remains guaranteed: data-race freedom (this
// binary is the TSan CI job's main payload), view invariants, and exact
// per-cycle initiation accounting. ThreadPool units ride along so the TSan
// job covers the pool's handshake directly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/sim/parallel_cycle_engine.hpp"
#include "pss/sim/thread_pool.hpp"

namespace pss::sim {
namespace {

std::vector<NodeDescriptor> to_vec(std::span<const NodeDescriptor> s) {
  return {s.begin(), s.end()};
}

void expect_networks_identical(Network& a, Network& b, const char* where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (NodeId id = 0; id < a.size(); ++id) {
    ASSERT_EQ(to_vec(a.view_span(id)), to_vec(b.view_span(id)))
        << where << ", node " << id;
    ASSERT_EQ(a.node(id).stats().initiated, b.node(id).stats().initiated)
        << where << ", node " << id;
    ASSERT_EQ(a.node(id).stats().received, b.node(id).stats().received)
        << where << ", node " << id;
    ASSERT_EQ(a.node(id).stats().replies_sent, b.node(id).stats().replies_sent)
        << where << ", node " << id;
    ASSERT_EQ(a.node(id).stats().contact_failures,
              b.node(id).stats().contact_failures)
        << where << ", node " << id;
  }
  // Same master-Rng consumption: the streams must be in lockstep, not just
  // the state they produced.
  ASSERT_EQ(a.rng()(), b.rng()()) << where << ", master rng";
}

void expect_stats_equal(const EngineStats& a, const EngineStats& b,
                        const char* where) {
  EXPECT_EQ(a.exchanges, b.exchanges) << where;
  EXPECT_EQ(a.failed_contacts, b.failed_contacts) << where;
  EXPECT_EQ(a.empty_views, b.empty_views) << where;
}

// Drives the same eventful scenario — kills, a temporary partition, a
// revive, late empty-view joiners — through the sequential engine and a
// parallel engine, comparing full network state after every cycle.
void check_parallel_matches_sequential(ProtocolSpec spec, unsigned threads,
                                       ParallelPolicy policy) {
  constexpr std::size_t kNodes = 120;
  constexpr std::uint64_t kSeed = 20260728;
  const ProtocolOptions options{8, /*remove_dead_on_failure=*/true};
  Network seq_net = bootstrap::make_random(spec, options, kNodes, kSeed);
  Network par_net = bootstrap::make_random(spec, options, kNodes, kSeed);
  CycleEngine seq(seq_net);
  ParallelCycleEngine par(par_net, {threads, policy});
  if (threads != 0) {
    ASSERT_EQ(par.threads(), threads);
  }
  for (Cycle cycle = 0; cycle < 10; ++cycle) {
    if (cycle == 2) {
      // Dead contacts + remove_dead_on_failure eviction.
      for (NodeId id = 0; id < kNodes / 5; ++id) {
        seq_net.kill(id);
        par_net.kill(id);
      }
    }
    if (cycle == 4) {
      // Cross-partition contacts fail without touching the peer.
      for (NodeId id = 0; id < kNodes; id += 3) {
        seq_net.set_partition_group(id, 1);
        par_net.set_partition_group(id, 1);
      }
    }
    if (cycle == 6) {
      seq_net.clear_partitions();
      par_net.clear_partitions();
      seq_net.revive(0);
      par_net.revive(0);
      // Late joiners with empty views exercise the inline empty-view path.
      seq_net.add_nodes(5);
      par_net.add_nodes(5);
    }
    seq.run_cycle();
    par.run_cycle();
    expect_networks_identical(seq_net, par_net, spec.name().c_str());
    expect_stats_equal(seq.stats(), par.stats(), spec.name().c_str());
  }
  EXPECT_EQ(par.cycle(), 10u);
}

TEST(ParallelCycleEngine, DeterministicMatchesSequentialNewscast4Threads) {
  check_parallel_matches_sequential(ProtocolSpec::newscast(), 4,
                                    ParallelPolicy::kDeterministic);
}

TEST(ParallelCycleEngine, DeterministicMatchesSequentialAllEvaluated) {
  // The acceptance matrix: every evaluated protocol, T threads vs the
  // sequential engine. Odd thread counts catch partition-arithmetic bugs.
  for (const ProtocolSpec& spec : ProtocolSpec::evaluated()) {
    check_parallel_matches_sequential(spec, 4,
                                      ParallelPolicy::kDeterministic);
  }
}

TEST(ParallelCycleEngine, DeterministicMatchesSequentialOddThreads) {
  check_parallel_matches_sequential(ProtocolSpec::newscast(), 3,
                                    ParallelPolicy::kDeterministic);
  check_parallel_matches_sequential(ProtocolSpec::lpbcast(), 7,
                                    ParallelPolicy::kDeterministic);
}

TEST(ParallelCycleEngine, SingleThreadIsTheSequentialEngine) {
  check_parallel_matches_sequential(ProtocolSpec::newscast(), 1,
                                    ParallelPolicy::kDeterministic);
}

TEST(ParallelCycleEngine, ThreadCountsAgreeWithEachOther) {
  // Transitivity spot-check at a size big enough for multi-chunk batches.
  const ProtocolSpec spec = ProtocolSpec::newscast();
  const ProtocolOptions options{10, false};
  Network net2 = bootstrap::make_random(spec, options, 600, 7);
  Network net8 = bootstrap::make_random(spec, options, 600, 7);
  ParallelCycleEngine eng2(net2, {2, ParallelPolicy::kDeterministic});
  ParallelCycleEngine eng8(net8, {8, ParallelPolicy::kDeterministic});
  eng2.run(6);
  eng8.run(6);
  expect_networks_identical(net2, net8, "2 vs 8 threads");
  expect_stats_equal(eng2.stats(), eng8.stats(), "2 vs 8 threads");
}

TEST(ParallelCycleEngine, HubTopologyDegradesToSequentialWithoutDeadlock) {
  // Star bootstrap: every leaf's view holds only the hub, so (almost) every
  // step contends on it and the scheduler must serialize batch by batch.
  const ProtocolSpec spec = ProtocolSpec::newscast();
  const ProtocolOptions options{6, false};
  for (unsigned threads : {1u, 4u}) {
    Network seq_net(spec, options, 11);
    seq_net.add_nodes(40);
    bootstrap::init_star(seq_net);
    Network par_net(spec, options, 11);
    par_net.add_nodes(40);
    bootstrap::init_star(par_net);
    CycleEngine seq(seq_net);
    ParallelCycleEngine par(par_net, {threads, ParallelPolicy::kDeterministic});
    seq.run(5);
    par.run(5);
    expect_networks_identical(seq_net, par_net, "hub");
    expect_stats_equal(seq.stats(), par.stats(), "hub");
  }
}

TEST(ParallelCycleEngine, ReportsConfiguredThreadsAndPolicy) {
  Network net = bootstrap::make_random(ProtocolSpec::newscast(),
                                       ProtocolOptions{5, false}, 20, 3);
  ParallelCycleEngine engine(net, {2, ParallelPolicy::kDeterministic});
  EXPECT_EQ(engine.threads(), 2u);
  EXPECT_EQ(engine.policy(), ParallelPolicy::kDeterministic);
  EXPECT_EQ(engine.cycle(), 0u);
  engine.run(0);
  EXPECT_EQ(engine.cycle(), 0u);
  EXPECT_EQ(engine.stats().exchanges, 0u);
}

// --- Relaxed mode ---------------------------------------------------------

bool is_normalized_no_self(std::span<const NodeDescriptor> v, NodeId self) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i].address == self) return false;
    if (i + 1 < v.size() && !ByHopThenAddress{}(v[i], v[i + 1])) return false;
  }
  return true;
}

TEST(RelaxedMode, InvariantsAndAccountingHoldUnderThreads) {
  constexpr std::size_t kNodes = 300;
  constexpr Cycle kCycles = 6;
  const ProtocolOptions options{8, false};
  for (const ProtocolSpec& spec :
       {ProtocolSpec::newscast(), ProtocolSpec::lpbcast()}) {
    Network net = bootstrap::make_random(spec, options, kNodes, 99);
    ParallelCycleEngine engine(net, {4, ParallelPolicy::kRelaxed});
    engine.run(kCycles);
    // Every live node initiates exactly once per cycle, regardless of how
    // the lanes interleaved.
    std::uint64_t initiated = 0;
    for (NodeId id = 0; id < kNodes; ++id) {
      initiated += net.node(id).stats().initiated;
      ASSERT_TRUE(is_normalized_no_self(net.view_span(id), id)) << id;
      ASSERT_LE(net.view_span(id).size(), options.view_size) << id;
    }
    EXPECT_EQ(initiated, static_cast<std::uint64_t>(kNodes) * kCycles);
    const EngineStats& s = engine.stats();
    EXPECT_EQ(s.exchanges + s.failed_contacts,
              static_cast<std::uint64_t>(kNodes) * kCycles);
    EXPECT_EQ(s.empty_views, 0u);
    EXPECT_GT(s.exchanges, 0u);
  }
}

TEST(RelaxedMode, SurvivesDeadContactsAndChurnedLiveness) {
  Network net = bootstrap::make_random(ProtocolSpec::newscast(),
                                       ProtocolOptions{6, true}, 200, 5);
  ParallelCycleEngine engine(net, {4, ParallelPolicy::kRelaxed});
  for (Cycle c = 0; c < 6; ++c) {
    if (c == 2) {
      for (NodeId id = 0; id < 50; ++id) net.kill(id);
    }
    if (c == 4) net.add_nodes(20);  // empty views join mid-run
    engine.run_cycle();
  }
  const EngineStats& s = engine.stats();
  EXPECT_GT(s.exchanges, 0u);
  EXPECT_GT(s.failed_contacts, 0u);  // dead links got contacted
  for (NodeId id = 0; id < net.size(); ++id) {
    ASSERT_TRUE(is_normalized_no_self(net.view_span(id), id)) << id;
  }
}

TEST(RelaxedMode, HubContentionSerializesWithoutDeadlock) {
  // Every exchange locks the hub: maximal lock contention on one node.
  Network net(ProtocolSpec::newscast(), ProtocolOptions{6, false}, 13);
  net.add_nodes(64);
  bootstrap::init_star(net);
  ParallelCycleEngine engine(net, {8, ParallelPolicy::kRelaxed});
  engine.run(4);
  EXPECT_GT(engine.stats().exchanges, 0u);
}

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPool, RunsEveryLaneExactlyOncePerDispatch) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.concurrency(), 4u);
  std::vector<std::atomic<int>> hits(4);
  for (int round = 0; round < 50; ++round) {
    pool.run([&](unsigned lane) { ++hits[lane]; });
  }
  for (unsigned lane = 0; lane < 4; ++lane) {
    EXPECT_EQ(hits[lane].load(), 50) << "lane " << lane;
  }
}

TEST(ThreadPool, RunIsAFullBarrier) {
  ThreadPool pool(4);
  std::vector<std::uint64_t> lane_sums(4, 0);
  std::uint64_t expected = 0;
  for (int round = 0; round < 20; ++round) {
    pool.run([&](unsigned lane) { lane_sums[lane] += lane + 1; });
    // Plain (unsynchronized) reads: valid only because run() returns after
    // a full barrier. TSan proves the claim.
    std::uint64_t total = 0;
    for (std::uint64_t s : lane_sums) total += s;
    expected += 1 + 2 + 3 + 4;
    ASSERT_EQ(total, expected);
  }
}

TEST(ThreadPool, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1u);
  unsigned ran = 0;
  pool.run([&](unsigned lane) {
    EXPECT_EQ(lane, 0u);
    ++ran;
  });
  EXPECT_EQ(ran, 1u);
}

TEST(ThreadPool, PropagatesTaskExceptionsAfterTheBarrier) {
  // The check macros throw std::logic_error by design; a throw on any
  // lane must surface from run() on the caller — after the barrier, so no
  // captured state dies under a running worker — and leave the pool
  // usable.
  ThreadPool pool(4);
  for (unsigned bad_lane = 0; bad_lane < 4; ++bad_lane) {
    EXPECT_THROW(pool.run([&](unsigned lane) {
                   if (lane == bad_lane) throw std::logic_error("boom");
                 }),
                 std::logic_error);
    std::atomic<unsigned> ran{0};
    pool.run([&](unsigned) { ++ran; });
    EXPECT_EQ(ran.load(), 4u);
  }
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.concurrency(), 1u);
  std::atomic<unsigned> ran{0};
  pool.run([&](unsigned) { ++ran; });
  EXPECT_EQ(ran.load(), pool.concurrency());
}

}  // namespace
}  // namespace pss::sim
