// ParallelEventEngine's contract: the Deterministic windowed schedule
// replays the sequential EventEngine bit-identically — identical
// EventEngineStats, identical per-node views/counters/Rng streams (pinned
// through scenarios::state_digest) — at every thread count, for every
// evaluated protocol, and under loss, timeouts, kills, revivals and late
// joiners. Suite names begin with ParallelEventEngine so CI's TSan job
// regex picks them up (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <vector>

#include "pss/scenarios/digest.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/event_engine.hpp"
#include "pss/sim/parallel_event_engine.hpp"
#include "pss/sim/probe.hpp"

namespace pss::sim {
namespace {

EventEngineConfig async_config() {
  EventEngineConfig cfg;
  cfg.period = 1.0;
  cfg.min_latency = 0.01;
  cfg.max_latency = 0.10;
  cfg.reply_timeout = 0.5;
  return cfg;
}

void expect_stats_equal(const EventEngineStats& a, const EventEngineStats& b) {
  EXPECT_EQ(a.wakeups, b.wakeups);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.messages_to_dead, b.messages_to_dead);
  EXPECT_EQ(a.replies_delivered, b.replies_delivered);
  EXPECT_EQ(a.replies_stale, b.replies_stale);
}

TEST(ParallelEventEngineDeterministic, AllProtocolsAllThreadCounts) {
  // One sequential reference per protocol; parallel runs at 1/2/4/8 lanes
  // must land on the same state digest and the same counters.
  for (const ProtocolSpec& spec : ProtocolSpec::evaluated()) {
    auto ref_net =
        bootstrap::make_random(spec, ProtocolOptions{8, false}, 150, 99);
    EventEngine ref(ref_net, async_config());
    ref.run_until(10.5);
    const std::uint64_t ref_digest = scenarios::state_digest(ref_net);
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      auto net =
          bootstrap::make_random(spec, ProtocolOptions{8, false}, 150, 99);
      ParallelEventEngine par(net, async_config(), threads);
      par.run_until(10.5);
      EXPECT_DOUBLE_EQ(ref.now(), par.now());
      expect_stats_equal(ref.stats(), par.stats());
      EXPECT_EQ(ref_digest, scenarios::state_digest(net))
          << spec.name() << " diverged at " << threads << " threads";
      if (::testing::Test::HasFailure()) {
        FAIL() << "divergence under " << spec.name() << " threads="
               << threads;
      }
    }
  }
}

TEST(ParallelEventEngineDeterministic, LossTimeoutsKillsAndLateJoiners) {
  // The adversarial trace the flat-vs-legacy suite uses: drops, real reply
  // timeouts, mid-run kills/revivals and late joiners, replayed against
  // the sequential engine at 4 lanes through interleaved run targets.
  auto cfg = async_config();
  cfg.drop_probability = 0.25;
  cfg.reply_timeout = 0.08;  // tighter than max_latency: real timeouts
  auto ref_net = bootstrap::make_random(ProtocolSpec::newscast(),
                                        ProtocolOptions{6, false}, 80, 7);
  auto par_net = bootstrap::make_random(ProtocolSpec::newscast(),
                                        ProtocolOptions{6, false}, 80, 7);
  EventEngine ref(ref_net, cfg);
  ParallelEventEngine par(par_net, cfg, 4);

  ref.run_until(5.0);
  par.run_until(5.0);
  for (NodeId id = 0; id < 20; ++id) {
    ref_net.kill(id);
    par_net.kill(id);
  }
  ref.run_until(10.0);
  par.run_until(10.0);
  for (NodeId id = 0; id < 10; ++id) {
    ref_net.revive(id);
    par_net.revive(id);
  }
  ref_net.add_nodes(15);
  par_net.add_nodes(15);
  ref.run_until(16.5);
  par.run_until(16.5);

  expect_stats_equal(ref.stats(), par.stats());
  EXPECT_EQ(scenarios::state_digest(ref_net), scenarios::state_digest(par_net));
}

TEST(ParallelEventEngineDeterministic, ZeroLatencyDegradesToSequential) {
  // min_latency == 0 empties the safe horizon: every window holds one
  // event and the engine must still be exactly the sequential run.
  auto cfg = async_config();
  cfg.min_latency = 0.0;
  auto ref_net = bootstrap::make_random(ProtocolSpec::newscast(),
                                        ProtocolOptions{8, false}, 60, 21);
  auto par_net = bootstrap::make_random(ProtocolSpec::newscast(),
                                        ProtocolOptions{8, false}, 60, 21);
  EventEngine ref(ref_net, cfg);
  ParallelEventEngine par(par_net, cfg, 4);
  ref.run_until(8.0);
  par.run_until(8.0);
  EXPECT_DOUBLE_EQ(par.lookahead(), 0.0);
  expect_stats_equal(ref.stats(), par.stats());
  EXPECT_EQ(scenarios::state_digest(ref_net), scenarios::state_digest(par_net));
}

TEST(ParallelEventEngineDeterministic, RunCyclesAndProbesMatchSequential) {
  // run_cycles' tick anchoring and the probe cadence must mirror the
  // sequential engine: same number of probe firings, same digests at the
  // end, probes not perturbing the event sequence.
  struct CountingProbe : SnapshotProbe {
    std::vector<Cycle> fired;
    void on_snapshot(const Network&, Cycle cycle) override {
      fired.push_back(cycle);
    }
  };
  auto ref_net = bootstrap::make_random(ProtocolSpec::newscast(),
                                        ProtocolOptions{8, false}, 70, 5);
  auto par_net = bootstrap::make_random(ProtocolSpec::newscast(),
                                        ProtocolOptions{8, false}, 70, 5);
  EventEngine ref(ref_net, async_config());
  ParallelEventEngine par(par_net, async_config(), 4);
  CountingProbe ref_probe;
  CountingProbe par_probe;
  ref.attach_probe(ref_probe, 2);
  par.attach_probe(par_probe, 2);
  ref.run_cycles(7);
  par.run_cycles(7);
  EXPECT_EQ(ref_probe.fired, par_probe.fired);
  EXPECT_DOUBLE_EQ(ref.now(), par.now());
  expect_stats_equal(ref.stats(), par.stats());
  EXPECT_EQ(scenarios::state_digest(ref_net), scenarios::state_digest(par_net));
}

TEST(ParallelEventEngineDeterministic, AdversaryHookMatchesSequential) {
  // A forging + aging-suppressing tamper (stateless, as the parallel seam
  // requires) must leave parallel and sequential runs identical.
  struct HubPoison : ExchangeTamper {
    bool is_byzantine(NodeId node) const override { return node % 7 == 0; }
    bool suppress_aging(NodeId node) const override { return node % 7 == 0; }
    void forge_buffer(NodeId sender, NodeId /*receiver*/,
                      std::vector<NodeDescriptor>& buffer) override {
      for (NodeDescriptor& d : buffer) d = {sender, 0};
      if (buffer.size() > 1) buffer.resize(buffer.size() - 1);
    }
  };
  auto ref_net = bootstrap::make_random(ProtocolSpec::newscast(),
                                        ProtocolOptions{8, false}, 90, 31);
  auto par_net = bootstrap::make_random(ProtocolSpec::newscast(),
                                        ProtocolOptions{8, false}, 90, 31);
  EventEngine ref(ref_net, async_config());
  ParallelEventEngine par(par_net, async_config(), 4);
  HubPoison ref_tamper;
  HubPoison par_tamper;
  ref.attach_adversary(ref_tamper);
  par.attach_adversary(par_tamper);
  ref.run_until(9.0);
  par.run_until(9.0);
  expect_stats_equal(ref.stats(), par.stats());
  EXPECT_EQ(scenarios::state_digest(ref_net), scenarios::state_digest(par_net));
}

TEST(ParallelEventEngineDeterministic, WindowsActuallyBatch) {
  // Sanity on the schedule itself: with a real latency floor and enough
  // nodes, windows defer many W-parts and (at >1 lane) dispatch through
  // the pool; everything still digest-matches the reference.
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{8, false}, 300, 77);
  ParallelEventEngine par(net, async_config(), 4);
  par.run_until(6.0);
  EXPECT_GT(par.windows(), 0u);
  EXPECT_GT(par.deferred_tasks(), 0u);
  EXPECT_GT(par.pooled_tasks(), 0u);
  // Every window defers at most as many tasks as it processed events, and
  // the pool never outruns the deferred total.
  EXPECT_LE(par.pooled_tasks(), par.deferred_tasks());

  auto ref_net = bootstrap::make_random(ProtocolSpec::newscast(),
                                        ProtocolOptions{8, false}, 300, 77);
  EventEngine ref(ref_net, async_config());
  ref.run_until(6.0);
  EXPECT_EQ(scenarios::state_digest(ref_net), scenarios::state_digest(net));
}

}  // namespace
}  // namespace pss::sim
