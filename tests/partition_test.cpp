// Tests for temporary network partitions (Section 8 discussion) and the
// dual-view combination (Section 10): partition plumbing in Network and
// both engines, cross-link memory decay, re-merge outcomes, DualViewNode
// and DualOverlay behaviour.
#include <gtest/gtest.h>

#include "pss/experiments/dual_overlay.hpp"
#include "pss/experiments/partition.hpp"
#include "pss/protocol/dual_view_node.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/sim/event_engine.hpp"

namespace pss {
namespace {

TEST(NetworkPartition, GroupAssignmentAndQueries) {
  sim::Network net(ProtocolSpec::newscast(), ProtocolOptions{5, false}, 1);
  net.add_nodes(4);
  EXPECT_FALSE(net.partitioned());
  EXPECT_TRUE(net.can_communicate(0, 1));
  net.set_partition_group(2, 1);
  net.set_partition_group(3, 1);
  EXPECT_TRUE(net.partitioned());
  EXPECT_EQ(net.partition_group(2), 1u);
  EXPECT_TRUE(net.can_communicate(0, 1));
  EXPECT_TRUE(net.can_communicate(2, 3));
  EXPECT_FALSE(net.can_communicate(0, 2));
  net.clear_partitions();
  EXPECT_FALSE(net.partitioned());
  EXPECT_TRUE(net.can_communicate(0, 2));
}

TEST(NetworkPartition, CrossLinkCounting) {
  sim::Network net(ProtocolSpec::newscast(), ProtocolOptions{5, false}, 2);
  net.add_nodes(4);
  net.node(0).set_view(View{{1, 0}, {2, 0}});
  net.node(2).set_view(View{{3, 0}, {0, 0}});
  EXPECT_EQ(net.count_cross_partition_links(), 0u);
  net.set_partition_group(2, 1);
  net.set_partition_group(3, 1);
  // 0->2 crosses, 2->0 crosses; 0->1 and 2->3 do not.
  EXPECT_EQ(net.count_cross_partition_links(), 2u);
}

TEST(NetworkPartition, CycleEngineBlocksCrossGroupExchanges) {
  sim::Network net(ProtocolSpec::newscast(), ProtocolOptions{5, false}, 3);
  net.add_nodes(2);
  net.node(0).set_view(View{{1, 0}});
  net.node(1).set_view(View{{0, 0}});
  net.set_partition_group(1, 1);
  sim::CycleEngine engine(net);
  engine.run(3);
  EXPECT_EQ(engine.stats().exchanges, 0u);
  EXPECT_EQ(engine.stats().failed_contacts, 6u);
  // Views unchanged apart from aging.
  EXPECT_TRUE(net.node(0).view().contains(1));
  EXPECT_TRUE(net.node(1).view().contains(0));
}

TEST(NetworkPartition, EventEngineDropsCrossGroupMessages) {
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{5, false}, 20, 4);
  for (NodeId id = 10; id < 20; ++id) net.set_partition_group(id, 1);
  sim::EventEngine engine(net, {});
  engine.run_until(10.0);
  EXPECT_GT(engine.stats().messages_to_dead, 0u);  // cross-group drops
  // Group-internal gossip still works.
  EXPECT_GT(engine.stats().replies_delivered, 0u);
}

TEST(PartitionExperiment, HeadSelectionForgetsOtherSideFast) {
  experiments::ScenarioParams p;
  p.n = 400;
  p.view_size = 15;
  p.cycles = 30;
  p.seed = 5;
  const auto r =
      experiments::run_partition_experiment(ProtocolSpec::newscast(), p, 0.5,
                                            /*partition_cycles=*/25,
                                            /*post_cycles=*/15);
  EXPECT_GT(r.cross_links_at_split, 100u);
  // Exponentially fast forgetting: essentially no memory after 25 cycles.
  EXPECT_LT(r.cross_links_at_heal, r.cross_links_at_split / 20);
  // Memory decays monotonically (allowing small jitter).
  EXPECT_LT(r.cross_links_during.back(), r.cross_links_during.front() + 1);
}

TEST(PartitionExperiment, RandSelectionRetainsMemoryAndRemerges) {
  experiments::ScenarioParams p;
  p.n = 400;
  p.view_size = 15;
  p.cycles = 30;
  p.seed = 6;
  const ProtocolSpec rand_vs{PeerSelection::kRand, ViewSelection::kRand,
                             ViewPropagation::kPushPull};
  const auto r = experiments::run_partition_experiment(rand_vs, p, 0.5, 25, 15);
  // Long memory: a solid fraction of cross links survives the split...
  EXPECT_GT(r.cross_links_at_heal, r.cross_links_at_split / 20);
  // ...so the overlay re-merges after healing.
  EXPECT_TRUE(r.remerged());
}

TEST(PartitionExperiment, LongSplitPermanentlyPartitionsNewscast) {
  experiments::ScenarioParams p;
  p.n = 400;
  p.view_size = 15;
  p.cycles = 30;
  p.seed = 7;
  const auto r = experiments::run_partition_experiment(
      ProtocolSpec::newscast(), p, 0.5, /*partition_cycles=*/40, 20);
  EXPECT_EQ(r.cross_links_at_heal, 0u);
  EXPECT_FALSE(r.remerged());
  EXPECT_EQ(r.components_after_rejoin, 2u);
}

TEST(PartitionExperiment, ValidatesSplitFraction) {
  experiments::ScenarioParams p;
  p.n = 50;
  p.view_size = 5;
  p.cycles = 5;
  EXPECT_THROW(experiments::run_partition_experiment(ProtocolSpec::newscast(),
                                                     p, 0.0, 5, 5),
               std::logic_error);
  EXPECT_THROW(experiments::run_partition_experiment(ProtocolSpec::newscast(),
                                                     p, 1.0, 5, 5),
               std::logic_error);
}

TEST(DualViewNode, CombinedViewMergesBothProtocols) {
  DualViewNode node(0, ProtocolOptions{4, false}, Rng(8));
  node.init_view(View{{1, 0}, {2, 0}});
  EXPECT_TRUE(node.combined_view().contains(1));
  EXPECT_TRUE(node.combined_view().contains(2));
  // Feed different information into the two sub-views.
  node.fast().handle_message(View{{3, 0}});
  node.slow().handle_message(View{{4, 0}});
  const View combined = node.combined_view();
  EXPECT_TRUE(combined.contains(3));
  EXPECT_TRUE(combined.contains(4));
  EXPECT_FALSE(combined.contains(0));  // never self
}

TEST(DualViewNode, GetPeerSamplesUnion) {
  DualViewNode node(0, ProtocolOptions{4, false}, Rng(9));
  node.init_view(View{{1, 0}});
  node.slow().handle_message(View{{2, 0}});
  std::set<NodeId> seen;
  for (int i = 0; i < 200; ++i) seen.insert(node.get_peer());
  EXPECT_TRUE(seen.contains(1));
  EXPECT_TRUE(seen.contains(2));
  DualViewNode empty(1, ProtocolOptions{4, false}, Rng(10));
  EXPECT_EQ(empty.get_peer(), kInvalidNode);
}

TEST(DualOverlay, RunsBothProtocolsAndStaysConnected) {
  experiments::DualOverlay dual(300, ProtocolOptions{12, false}, 11);
  dual.run(30);
  EXPECT_TRUE(dual.combined_connected());
  EXPECT_EQ(dual.count_dead_links(), 0u);
  // Both sub-overlays actually gossiped.
  EXPECT_GT(dual.fast_network().node(0).stats().initiated, 0u);
  EXPECT_GT(dual.slow_network().node(0).stats().initiated, 0u);
}

TEST(DualOverlay, SurvivesLongPartitionWhereNewscastDoesNot) {
  // The Section-10 payoff: the slow view keeps the memory, the fast view
  // keeps the healing. A split long enough to permanently break Newscast
  // leaves the dual overlay re-mergeable.
  experiments::DualOverlay dual(400, ProtocolOptions{15, false}, 12);
  dual.run(30);
  Rng rng(13);
  for (std::size_t idx : rng.sample_indices(400, 200))
    dual.set_partition_group(static_cast<NodeId>(idx), 1);
  dual.run(40);  // same duration that permanently splits plain Newscast
  EXPECT_GT(dual.count_cross_partition_links(), 0u);
  dual.clear_partitions();
  dual.run(20);
  EXPECT_TRUE(dual.combined_connected());
}

TEST(DualOverlay, KillPropagatesToBothOverlays) {
  experiments::DualOverlay dual(100, ProtocolOptions{8, false}, 14);
  dual.run(10);
  dual.kill(5);
  EXPECT_FALSE(dual.fast_network().is_live(5));
  EXPECT_FALSE(dual.slow_network().is_live(5));
  dual.run(15);
  // Dead links to node 5 age out of the combined views eventually (the
  // fast view heals; the slow view may retain some for a while).
  EXPECT_LT(dual.count_dead_links(), 100u);
}

}  // namespace
}  // namespace pss
