// Property-based suites over the WHOLE design space: every one of the 27
// protocol 3-tuples must maintain the view invariants under arbitrary
// exchange sequences, and whole-network runs must be deterministic and
// self-consistent.
#include <gtest/gtest.h>

#include <set>

#include "pss/graph/undirected_graph.hpp"
#include "pss/protocol/gossip_node.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"

namespace pss {
namespace {

class AllProtocols : public ::testing::TestWithParam<ProtocolSpec> {};

std::string spec_test_name(const ::testing::TestParamInfo<ProtocolSpec>& info) {
  std::string n = info.param.name();
  std::string out;
  for (char c : n) {
    if (c == '(' || c == ')') continue;
    out.push_back(c == ',' ? '_' : c);
  }
  return out;
}

// Invariant I: after any sequence of exchanges the view (a) never exceeds c,
// (b) never contains the node itself, (c) has no duplicate addresses, and
// (d) stays sorted by hop count.
TEST_P(AllProtocols, ViewInvariantsUnderRandomExchanges) {
  const auto spec = GetParam();
  constexpr std::size_t kC = 8;
  GossipNode node(0, spec, ProtocolOptions{kC, false}, Rng(1));
  node.init_view(View{{1, 0}, {2, 0}});
  Rng rng(99);
  for (int step = 0; step < 500; ++step) {
    // Random plausible incoming buffer (possibly containing node 0 itself).
    std::vector<NodeDescriptor> entries;
    const auto len = static_cast<std::size_t>(rng.below(kC + 3));
    for (std::size_t i = 0; i < len; ++i) {
      entries.push_back({static_cast<NodeId>(rng.below(20)),
                         static_cast<HopCount>(rng.below(10))});
    }
    if (rng.chance(0.5)) {
      node.handle_message(View(entries));
    } else if (spec.pull()) {
      node.handle_reply(View(entries));
    }
    ASSERT_LE(node.view().size(), kC);
    ASSERT_FALSE(node.view().contains(0));
    ASSERT_NO_THROW(node.view().validate());
  }
}

// The active buffer never exceeds c+1 entries and contains self at hop 0
// exactly when the protocol pushes.
TEST_P(AllProtocols, ActiveBufferShape) {
  const auto spec = GetParam();
  constexpr std::size_t kC = 6;
  GossipNode node(3, spec, ProtocolOptions{kC, false}, Rng(2));
  node.init_view(View{{1, 0}, {2, 0}, {4, 1}, {5, 2}, {6, 3}, {7, 4}});
  const View buffer = node.make_active_buffer();
  if (spec.push()) {
    EXPECT_LE(buffer.size(), kC + 1);
    EXPECT_TRUE(buffer.contains(3));
    EXPECT_EQ(buffer.hop_count_of(3), 0u);
  } else {
    EXPECT_TRUE(buffer.empty());
  }
}

// Determinism: two identically-seeded networks evolve identically.
TEST_P(AllProtocols, WholeNetworkDeterminism) {
  const auto spec = GetParam();
  ProtocolOptions opts{5, false};
  auto n1 = sim::bootstrap::make_random(spec, opts, 40, 2024);
  auto n2 = sim::bootstrap::make_random(spec, opts, 40, 2024);
  sim::CycleEngine e1(n1), e2(n2);
  e1.run(15);
  e2.run(15);
  for (NodeId id = 0; id < 40; ++id) {
    ASSERT_EQ(n1.node(id).view(), n2.node(id).view()) << "node " << id;
  }
  EXPECT_EQ(e1.stats().exchanges, e2.stats().exchanges);
}

// Every view entry refers to a node that exists; hop counts stay bounded by
// the number of cycles plus the bootstrap age.
TEST_P(AllProtocols, ViewsReferenceRealNodesAndPlausibleAges) {
  const auto spec = GetParam();
  constexpr std::size_t kN = 60;
  constexpr Cycle kCycles = 20;
  auto network = sim::bootstrap::make_random(spec, ProtocolOptions{6, false},
                                             kN, 7);
  sim::CycleEngine engine(network);
  engine.run(kCycles);
  for (NodeId id = 0; id < kN; ++id) {
    for (const auto& d : network.node(id).view().entries()) {
      ASSERT_LT(d.address, kN);
      ASSERT_NE(d.address, id);
      // A descriptor ages once per owner cycle plus once per transfer; the
      // number of transfers a copy survives per cycle is bounded by the
      // exchanges its holder participates in (expected 2, tails higher).
      // A generous sanity bound still catches runaway aging bugs.
      ASSERT_LE(d.hop_count, (kCycles + 1) * 8);
    }
    ASSERT_NO_THROW(network.node(id).view().validate());
  }
}

// The 8 evaluated protocols must keep a 200-node random-bootstrapped
// overlay connected for 50 cycles (the paper observed 100% connectivity in
// the random-init scenario).
class EvaluatedProtocols : public ::testing::TestWithParam<ProtocolSpec> {};

TEST_P(EvaluatedProtocols, RandomInitStaysConnected) {
  const auto spec = GetParam();
  auto network = sim::bootstrap::make_random(spec, ProtocolOptions{10, false},
                                             200, 31);
  sim::CycleEngine engine(network);
  for (int step = 0; step < 5; ++step) {
    engine.run(10);
    const auto g = graph::UndirectedGraph::from_network(network);
    std::vector<std::uint32_t> stack{0};
    std::set<std::uint32_t> seen{0};
    while (!stack.empty()) {
      auto v = stack.back();
      stack.pop_back();
      for (auto w : g.neighbors(v)) {
        if (seen.insert(w).second) stack.push_back(w);
      }
    }
    ASSERT_EQ(seen.size(), g.vertex_count())
        << spec.name() << " partitioned at cycle " << engine.cycle();
  }
}

// Exchanges conserve "knowledge": after one pushpull exchange between two
// isolated nodes, each knows the other.
TEST_P(EvaluatedProtocols, PairwiseExchangeCreatesMutualKnowledge) {
  const auto spec = GetParam();
  if (!spec.pull()) return;  // push-only: only the passive side learns
  GossipNode a(0, spec, ProtocolOptions{4, false}, Rng(1));
  GossipNode b(1, spec, ProtocolOptions{4, false}, Rng(2));
  a.init_view(View{{1, 0}});
  auto reply = b.handle_message(a.make_active_buffer());
  ASSERT_TRUE(reply.has_value());
  a.handle_reply(*reply);
  EXPECT_TRUE(a.view().contains(1));
  EXPECT_TRUE(b.view().contains(0));
}

INSTANTIATE_TEST_SUITE_P(DesignSpace, AllProtocols,
                         ::testing::ValuesIn(ProtocolSpec::all()),
                         spec_test_name);

INSTANTIATE_TEST_SUITE_P(Evaluated, EvaluatedProtocols,
                         ::testing::ValuesIn(ProtocolSpec::evaluated()),
                         spec_test_name);

}  // namespace
}  // namespace pss
