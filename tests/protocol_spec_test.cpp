// Unit tests for the protocol design space: naming, parsing, known
// instances, and the evaluated/excluded partition of Section 4.3.
#include <gtest/gtest.h>

#include <set>

#include "pss/protocol/spec.hpp"

namespace pss {
namespace {

TEST(ProtocolSpec, NamesMatchPaperNotation) {
  EXPECT_EQ(ProtocolSpec::newscast().name(), "(rand,head,pushpull)");
  EXPECT_EQ(ProtocolSpec::lpbcast().name(), "(rand,rand,push)");
  ProtocolSpec s{PeerSelection::kTail, ViewSelection::kRand, ViewPropagation::kPull};
  EXPECT_EQ(s.name(), "(tail,rand,pull)");
}

TEST(ProtocolSpec, PushPullFlags) {
  ProtocolSpec push{PeerSelection::kRand, ViewSelection::kRand, ViewPropagation::kPush};
  EXPECT_TRUE(push.push());
  EXPECT_FALSE(push.pull());
  ProtocolSpec pull{PeerSelection::kRand, ViewSelection::kRand, ViewPropagation::kPull};
  EXPECT_FALSE(pull.push());
  EXPECT_TRUE(pull.pull());
  ProtocolSpec both = ProtocolSpec::newscast();
  EXPECT_TRUE(both.push());
  EXPECT_TRUE(both.pull());
}

TEST(ProtocolSpec, ParseRoundTripsAllVariants) {
  for (const auto& spec : ProtocolSpec::all()) {
    auto parsed = ProtocolSpec::parse(spec.name());
    ASSERT_TRUE(parsed.has_value()) << spec.name();
    EXPECT_EQ(*parsed, spec);
  }
}

TEST(ProtocolSpec, ParseAcceptsLooseFormats) {
  EXPECT_EQ(ProtocolSpec::parse("rand,head,pushpull"), ProtocolSpec::newscast());
  EXPECT_EQ(ProtocolSpec::parse("( RAND , Head , PushPull )"),
            ProtocolSpec::newscast());
  EXPECT_EQ(ProtocolSpec::parse("newscast"), ProtocolSpec::newscast());
  EXPECT_EQ(ProtocolSpec::parse("Lpbcast"), ProtocolSpec::lpbcast());
}

TEST(ProtocolSpec, ParseRejectsMalformed) {
  EXPECT_FALSE(ProtocolSpec::parse("").has_value());
  EXPECT_FALSE(ProtocolSpec::parse("rand,head").has_value());
  EXPECT_FALSE(ProtocolSpec::parse("rand,head,pushpull,extra").has_value());
  EXPECT_FALSE(ProtocolSpec::parse("bogus,head,push").has_value());
  EXPECT_FALSE(ProtocolSpec::parse("rand,bogus,push").has_value());
  EXPECT_FALSE(ProtocolSpec::parse("rand,head,bogus").has_value());
}

TEST(ProtocolSpec, AllEnumeratesTwentySevenDistinct) {
  const auto all = ProtocolSpec::all();
  EXPECT_EQ(all.size(), 27u);
  std::set<std::string> names;
  for (const auto& s : all) names.insert(s.name());
  EXPECT_EQ(names.size(), 27u);
}

TEST(ProtocolSpec, EvaluatedMatchesSection43) {
  const auto evaluated = ProtocolSpec::evaluated();
  EXPECT_EQ(evaluated.size(), 8u);
  for (const auto& s : evaluated) {
    EXPECT_NE(s.peer_selection, PeerSelection::kHead) << s.name();
    EXPECT_NE(s.view_selection, ViewSelection::kTail) << s.name();
    EXPECT_NE(s.view_propagation, ViewPropagation::kPull) << s.name();
  }
}

TEST(ProtocolSpec, EvaluatedPlusExcludedCoversAll) {
  std::set<std::string> names;
  for (const auto& s : ProtocolSpec::evaluated()) names.insert(s.name());
  for (const auto& s : ProtocolSpec::excluded()) names.insert(s.name());
  EXPECT_EQ(names.size(), 27u);
  EXPECT_EQ(ProtocolSpec::evaluated().size() + ProtocolSpec::excluded().size(), 27u);
}

TEST(ProtocolSpec, KnownProtocolsAreEvaluated) {
  const auto evaluated = ProtocolSpec::evaluated();
  auto has = [&](const ProtocolSpec& s) {
    return std::find(evaluated.begin(), evaluated.end(), s) != evaluated.end();
  };
  EXPECT_TRUE(has(ProtocolSpec::newscast()));
  EXPECT_TRUE(has(ProtocolSpec::lpbcast()));
}

TEST(ProtocolSpec, ToStringCoversAllEnumerators) {
  EXPECT_EQ(to_string(PeerSelection::kRand), "rand");
  EXPECT_EQ(to_string(PeerSelection::kHead), "head");
  EXPECT_EQ(to_string(PeerSelection::kTail), "tail");
  EXPECT_EQ(to_string(ViewSelection::kRand), "rand");
  EXPECT_EQ(to_string(ViewSelection::kHead), "head");
  EXPECT_EQ(to_string(ViewSelection::kTail), "tail");
  EXPECT_EQ(to_string(ViewPropagation::kPush), "push");
  EXPECT_EQ(to_string(ViewPropagation::kPull), "pull");
  EXPECT_EQ(to_string(ViewPropagation::kPushPull), "pushpull");
}

TEST(ProtocolOptions, Defaults) {
  ProtocolOptions opts;
  EXPECT_EQ(opts.view_size, 30u);  // paper's c
  EXPECT_FALSE(opts.remove_dead_on_failure);
}

}  // namespace
}  // namespace pss
