// Unit tests for the uniform random-view baseline graph and its analytic
// expectations (the horizontal reference lines of Figures 2-3).
#include <gtest/gtest.h>

#include "pss/graph/metrics.hpp"
#include "pss/graph/random_graph.hpp"

namespace pss::graph {
namespace {

TEST(RandomViewGraph, DegreeAtLeastC) {
  // Every vertex has c out-links, so undirected degree >= c... only when
  // out-links are distinct per vertex, which sample_indices guarantees.
  Rng rng(1);
  const auto g = random_view_graph(500, 12, rng);
  for (std::uint32_t v = 0; v < 500; ++v) EXPECT_GE(g.degree(v), 12u);
}

TEST(RandomViewGraph, MeanDegreeMatchesClosedForm) {
  Rng rng(2);
  const std::size_t n = 3000, c = 20;
  const auto g = random_view_graph(n, c, rng);
  EXPECT_NEAR(average_degree(g), expected_random_view_degree(n, c), 0.25);
}

TEST(RandomViewGraph, SmallNClampsOutDegree) {
  Rng rng(3);
  const auto g = random_view_graph(5, 30, rng);
  // c clamps to n-1=4: complete graph.
  EXPECT_EQ(g.edge_count(), 10u);
}

TEST(RandomViewGraph, RejectsTrivialN) {
  Rng rng(4);
  EXPECT_THROW(random_view_graph(1, 3, rng), std::logic_error);
}

TEST(RandomViewGraph, IsAlmostSurelyConnected) {
  // c = 12 out-links on 1000 vertices: far above the connectivity
  // threshold; all seeds must give a single component.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    const auto g = random_view_graph(1000, 12, rng);
    EXPECT_TRUE(connected_components(g).connected()) << "seed " << seed;
  }
}

TEST(RandomViewGraph, ClusteringNearExpectation) {
  Rng rng(5);
  const std::size_t n = 2000, c = 15;
  const auto g = random_view_graph(n, c, rng);
  const double expected = expected_random_view_clustering(n, c);
  EXPECT_NEAR(clustering_coefficient(g), expected, expected);  // within 2x
  EXPECT_LT(clustering_coefficient(g), 0.05);
}

TEST(RandomViewGraph, PathLengthNearLogApproximation) {
  Rng rng(6);
  const std::size_t n = 2000, c = 15;
  const auto g = random_view_graph(n, c, rng);
  Rng sample_rng(7);
  const double measured = average_path_length_sampled(g, 100, sample_rng).average;
  const double approx = expected_random_path_length(n, c);
  // ln(n)/ln(d) is a rough approximation; agreement within 25% is the
  // documented contract.
  EXPECT_NEAR(measured, approx, 0.25 * approx);
}

TEST(RandomViewGraph, ExpectedDegreeFormulaSanity) {
  // c << n: nearly 2c. c = n-1: exactly n-1 (complete graph).
  EXPECT_NEAR(expected_random_view_degree(100000, 30), 60.0, 0.05);
  EXPECT_DOUBLE_EQ(expected_random_view_degree(10, 9), 9.0);
}

TEST(RandomViewGraph, PaperScaleBaselineValues) {
  // N = 10^4, c = 30 (paper parameters): mean degree just below 60 and
  // clustering just below 0.006 — the horizontal lines in Figures 2-3.
  const double d = expected_random_view_degree(10000, 30);
  EXPECT_NEAR(d, 59.91, 0.01);
  EXPECT_NEAR(expected_random_view_clustering(10000, 30), 0.005991, 0.00001);
  // Path length approximation: ln(1e4)/ln(59.91) ~ 2.25.
  EXPECT_NEAR(expected_random_path_length(10000, 30), 2.25, 0.05);
}

TEST(RandomViewGraph, DifferentSeedsDifferentGraphs) {
  Rng r1(10), r2(11);
  const auto g1 = random_view_graph(200, 5, r1);
  const auto g2 = random_view_graph(200, 5, r2);
  std::size_t common = 0, total = 0;
  for (std::uint32_t v = 0; v < 200; ++v) {
    for (auto w : g1.neighbors(v)) {
      ++total;
      if (g2.has_edge(v, w)) ++common;
    }
  }
  EXPECT_LT(static_cast<double>(common) / static_cast<double>(total), 0.2);
}

}  // namespace
}  // namespace pss::graph
