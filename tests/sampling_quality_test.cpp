// Tests for the sampling-quality statistics: chi-square machinery on known
// distributions, and the paper's headline result as a statistical test —
// the ideal sampler passes uniformity, every gossip-based service fails it.
#include <gtest/gtest.h>

#include "pss/service/ideal_uniform_sampler.hpp"
#include "pss/service/peer_sampling_service.hpp"
#include "pss/service/sampling_quality.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"

namespace pss {
namespace {

TEST(ChiSquareUpperTail, KnownValues) {
  // chi2 with df: upper tail at the mean (x = df) is ~0.5 for large df.
  EXPECT_NEAR(chi_square_upper_tail(100, 100), 0.5, 0.03);
  EXPECT_NEAR(chi_square_upper_tail(500, 500), 0.5, 0.02);
  // df=10: critical value at 0.05 is 18.31, at 0.01 is 23.21.
  EXPECT_NEAR(chi_square_upper_tail(18.31, 10), 0.05, 0.01);
  EXPECT_NEAR(chi_square_upper_tail(23.21, 10), 0.01, 0.005);
  // Extremes.
  EXPECT_DOUBLE_EQ(chi_square_upper_tail(0, 10), 1.0);
  EXPECT_LT(chi_square_upper_tail(1000, 10), 1e-9);
  EXPECT_THROW(chi_square_upper_tail(1, 0), std::logic_error);
}

TEST(AssessUniformity, PerfectlyBalancedStream) {
  // Round-robin over 10 peers: chi-square 0, p-value 1.
  std::vector<NodeId> samples;
  for (int round = 0; round < 100; ++round)
    for (NodeId p = 0; p < 10; ++p) samples.push_back(p);
  const auto r = assess_uniformity(samples, 10);
  EXPECT_EQ(r.draws, 1000u);
  EXPECT_EQ(r.distinct, 10u);
  EXPECT_DOUBLE_EQ(r.chi_square, 0.0);
  EXPECT_TRUE(r.plausibly_uniform());
  EXPECT_DOUBLE_EQ(r.hit_cv, 0.0);
  EXPECT_DOUBLE_EQ(r.repeat_rate, 0.0);
}

TEST(AssessUniformity, ConstantStreamFailsBadly) {
  const std::vector<NodeId> samples(500, 3);
  const auto r = assess_uniformity(samples, 10);
  EXPECT_EQ(r.distinct, 1u);
  EXPECT_FALSE(r.plausibly_uniform());
  EXPECT_LT(r.p_value, 1e-12);
  EXPECT_DOUBLE_EQ(r.repeat_rate, 1.0);
  EXPECT_GT(r.hit_cv, 2.0);
}

TEST(AssessUniformity, ValidatesInputs) {
  const std::vector<NodeId> ok{0, 1};
  EXPECT_THROW(assess_uniformity(ok, 1), std::logic_error);
  EXPECT_THROW(assess_uniformity({}, 5), std::logic_error);
  const std::vector<NodeId> out_of_range{0, 7};
  EXPECT_THROW(assess_uniformity(out_of_range, 5), std::logic_error);
}

TEST(AssessUniformity, IdealSamplerPasses) {
  // Map the ideal sampler's output (group minus self) into [0, pop).
  const std::size_t group = 201;  // population of others = 200
  IdealUniformSampler sampler(200, group, Rng(1));  // self is the last id
  std::vector<NodeId> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(sampler.get_peer());
  const auto r = assess_uniformity(samples, 200);
  EXPECT_TRUE(r.plausibly_uniform(0.001)) << "p=" << r.p_value;
  EXPECT_EQ(r.distinct, 200u);
  EXPECT_NEAR(r.repeat_rate, r.expected_repeat_rate, 0.005);
}

TEST(AssessUniformity, BiasedSamplerFails) {
  // 2x weight on even peers: chi-square must reject at this sample size.
  Rng rng(2);
  std::vector<NodeId> samples;
  for (int i = 0; i < 20000; ++i) {
    NodeId p = static_cast<NodeId>(rng.below(100));
    if (p % 2 == 1 && rng.chance(0.5)) p = (p + 1) % 100;
    samples.push_back(p);
  }
  const auto r = assess_uniformity(samples, 100);
  EXPECT_FALSE(r.plausibly_uniform());
}

TEST(PaperHeadline, GossipSamplingIsNotUniform) {
  // The paper's main conclusion as a statistical test. One consumer on a
  // converged Newscast overlay draws samples over many cycles; even with
  // the view refreshing constantly, the stream is measurably non-uniform.
  const std::size_t n = 500;
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{20, false}, n, 3);
  sim::CycleEngine engine(net);
  engine.run(40);
  PeerSamplingService service(net.node(0), Rng(4));
  std::vector<NodeId> samples;
  for (int cycle = 0; cycle < 200; ++cycle) {
    engine.run_cycle();
    for (int k = 0; k < 50; ++k) {
      NodeId p = service.get_peer();
      // Map: consumer is node 0, population = nodes 1..n-1 -> [0, n-1).
      samples.push_back(p - 1);
    }
  }
  const auto gossip = assess_uniformity(samples, n - 1);
  EXPECT_FALSE(gossip.plausibly_uniform())
      << "chi2=" << gossip.chi_square << " p=" << gossip.p_value;

  // Control: the ideal sampler with the same draw count passes.
  IdealUniformSampler ideal(n - 1, n - 1, Rng(5));  // self outside [0,n-1)
  std::vector<NodeId> control;
  for (std::size_t i = 0; i < samples.size(); ++i)
    control.push_back(ideal.get_peer());
  const auto uniform = assess_uniformity(control, n - 1);
  EXPECT_TRUE(uniform.plausibly_uniform(0.001)) << "p=" << uniform.p_value;
  // And the gossip stream is *usable* nonetheless: broad coverage.
  EXPECT_GT(gossip.distinct, (n - 1) * 9 / 10);
}

TEST(PaperHeadline, BothViewSelectionsFailUniformity) {
  // Both view-selection families fail the uniformity test from a single
  // consumer's perspective. (Note: global degree imbalance — heavier under
  // rand view selection, Fig. 4 — does NOT directly order the per-consumer
  // chi-square: a consumer's stream under head selection is skewed toward
  // its own recent contacts, which empirically costs more uniformity than
  // the rand-selection degree tail.)
  const std::size_t n = 400;
  auto draw = [&](ProtocolSpec spec, std::uint64_t seed) {
    auto net = sim::bootstrap::make_random(spec, ProtocolOptions{20, false},
                                           n, seed);
    sim::CycleEngine engine(net);
    engine.run(40);
    PeerSamplingService service(net.node(0), Rng(seed + 1));
    std::vector<NodeId> samples;
    for (int cycle = 0; cycle < 150; ++cycle) {
      engine.run_cycle();
      for (int k = 0; k < 40; ++k) samples.push_back(service.get_peer() - 1);
    }
    return assess_uniformity(samples, n - 1);
  };
  const auto head = draw(ProtocolSpec::newscast(), 6);
  const auto rand = draw({PeerSelection::kRand, ViewSelection::kRand,
                          ViewPropagation::kPushPull},
                         6);
  EXPECT_FALSE(head.plausibly_uniform()) << "p=" << head.p_value;
  EXPECT_FALSE(rand.plausibly_uniform()) << "p=" << rand.p_value;
}

}  // namespace
}  // namespace pss
