// Unit tests for the scenario drivers: sampling cadence, growing-overlay
// mechanics, measurement correctness, and reporting helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "pss/experiments/reporting.hpp"
#include "pss/experiments/scenario.hpp"
#include "pss/graph/random_graph.hpp"
#include "pss/sim/bootstrap.hpp"

namespace pss::experiments {
namespace {

ScenarioParams small_params() {
  ScenarioParams p;
  p.n = 200;
  p.view_size = 14;  // keeps c/ln(N) near the paper's density regime
  p.cycles = 20;
  p.seed = 42;
  p.sample_interval = 5;
  p.exact_metrics = true;
  p.growth_per_cycle = 20;
  return p;
}

TEST(Measure, MatchesDirectGraphMetrics) {
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{8, false}, 100, 1);
  ScenarioParams p = small_params();
  Rng rng(2);
  const auto sample = measure(net, 7, p, rng);
  EXPECT_EQ(sample.cycle, 7u);
  EXPECT_EQ(sample.live_nodes, 100u);
  const auto g = graph::UndirectedGraph::from_network(net);
  EXPECT_DOUBLE_EQ(sample.avg_degree, graph::average_degree(g));
  EXPECT_DOUBLE_EQ(sample.clustering, graph::clustering_coefficient(g));
  EXPECT_DOUBLE_EQ(sample.path_length, graph::average_path_length(g).average);
  EXPECT_EQ(sample.components, 1u);
  EXPECT_EQ(sample.largest_component, 100u);
  EXPECT_EQ(sample.dead_links, 0u);
}

TEST(Measure, CountsDeadLinks) {
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{8, false}, 50, 3);
  Rng kill_rng(4);
  net.kill_random(10, kill_rng);
  ScenarioParams p = small_params();
  Rng rng(5);
  const auto sample = measure(net, 0, p, rng);
  EXPECT_EQ(sample.live_nodes, 40u);
  EXPECT_GT(sample.dead_links, 0u);
  EXPECT_EQ(sample.dead_links, net.count_dead_links());
}

TEST(RunScenario, SamplesAtExpectedCycles) {
  const auto result = run_random_scenario(ProtocolSpec::newscast(), small_params());
  // Cycle 0, then 5, 10, 15, 20.
  ASSERT_EQ(result.series.size(), 5u);
  EXPECT_EQ(result.series[0].cycle, 0u);
  EXPECT_EQ(result.series[1].cycle, 5u);
  EXPECT_EQ(result.series.back().cycle, 20u);
}

TEST(RunScenario, FinalCycleAlwaysSampled) {
  ScenarioParams p = small_params();
  p.cycles = 7;  // not a multiple of the interval
  const auto result = run_random_scenario(ProtocolSpec::newscast(), p);
  EXPECT_EQ(result.series.back().cycle, 7u);
}

TEST(RunScenario, DeterministicAcrossCalls) {
  const auto a = run_random_scenario(ProtocolSpec::newscast(), small_params());
  const auto b = run_random_scenario(ProtocolSpec::newscast(), small_params());
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.series[i].avg_degree, b.series[i].avg_degree);
    EXPECT_DOUBLE_EQ(a.series[i].clustering, b.series[i].clustering);
  }
}

TEST(RunScenario, LatticeStartsStructured) {
  const auto result = run_lattice_scenario(ProtocolSpec::newscast(), small_params());
  // Initial lattice: very high clustering and path length vs converged.
  const auto& first = result.series.front();
  const auto& last = result.series.back();
  EXPECT_GT(first.clustering, 0.5);
  EXPECT_GT(first.path_length, 2.5 * last.path_length);
  EXPECT_LT(last.clustering, 0.5);
}

TEST(GrowingScenario, PopulationGrowsBySchedule) {
  ScenarioParams p = small_params();
  p.cycles = 15;
  p.sample_interval = 1;
  const auto result = run_growing_scenario(ProtocolSpec::newscast(), p);
  // 1 initial node; +20 per cycle until 200.
  EXPECT_EQ(result.series[0].live_nodes, 1u);
  EXPECT_EQ(result.series[1].live_nodes, 21u);
  EXPECT_EQ(result.series[5].live_nodes, 101u);
  EXPECT_EQ(result.series[10].live_nodes, 200u);  // capped at n
  EXPECT_EQ(result.series[15].live_nodes, 200u);
}

TEST(GrowingScenario, PushPullAbsorbsJoiners) {
  ScenarioParams p = small_params();
  p.cycles = 40;
  const auto result = run_growing_scenario(ProtocolSpec::newscast(), p);
  const auto& last = result.final_sample();
  EXPECT_EQ(last.components, 1u);
  EXPECT_EQ(last.largest_component, 200u);
  EXPECT_GT(last.avg_degree, 8.0);
}

TEST(GrowingPartitioning, AggregatesAcrossRuns) {
  ScenarioParams p = small_params();
  p.cycles = 25;
  const auto stats = run_growing_partitioning(ProtocolSpec::newscast(), p, 5);
  EXPECT_EQ(stats.runs, 5u);
  EXPECT_LE(stats.partitioned_runs, 5u);
  EXPECT_EQ(stats.spec, ProtocolSpec::newscast());
  // Newscast (pushpull) should essentially never partition here.
  EXPECT_EQ(stats.partitioned_runs, 0u);
  EXPECT_DOUBLE_EQ(stats.partitioned_fraction(), 0.0);
}

TEST(Reporting, BannerAndSeriesRender) {
  std::ostringstream os;
  ScenarioParams p = small_params();
  print_banner(os, "Fig. X test", "Section 0", p, "extra-note");
  std::vector<MetricsSample> series(2);
  series[1].cycle = 5;
  series[1].avg_degree = 12.5;
  print_series(os, "(rand,head,pushpull)", series, nullptr);
  const auto out = os.str();
  EXPECT_NE(out.find("Fig. X test"), std::string::npos);
  EXPECT_NE(out.find("N=200"), std::string::npos);
  EXPECT_NE(out.find("extra-note"), std::string::npos);
  EXPECT_NE(out.find("(rand,head,pushpull)"), std::string::npos);
  EXPECT_NE(out.find("12.50"), std::string::npos);
}

TEST(Reporting, RandomBaselineMatchesTheory) {
  ScenarioParams p = small_params();
  p.n = 2000;
  p.view_size = 15;
  const auto baseline = measure_random_baseline(p);
  EXPECT_NEAR(baseline.avg_degree,
              graph::expected_random_view_degree(2000, 15), 0.5);
  EXPECT_GT(baseline.path_length, 1.5);
  EXPECT_LT(baseline.clustering, 0.05);
}

TEST(ScenarioParams, ProtocolOptionsPropagation) {
  ScenarioParams p;
  p.view_size = 17;
  p.remove_dead_on_failure = true;
  const auto opts = p.protocol_options();
  EXPECT_EQ(opts.view_size, 17u);
  EXPECT_TRUE(opts.remove_dead_on_failure);
}

}  // namespace
}  // namespace pss::experiments
