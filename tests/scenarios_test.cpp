// The scenario subsystem's pinning layer: differential, property and
// golden-trace tests for AdversaryModel, TraceChurn and the ScenarioSpec
// registry (src/scenarios/).
//
// Organization mirrors the subsystem's three contracts:
//   ScenarioDifferential — a zero-byzantine adversary and a uniform-mode
//     TraceChurn are *bit-identical* (state digest: views, liveness,
//     NodeStats, per-node Rng consumption; census digest: the measurement
//     layer's independent verdict) to the unhooked engines. This is what
//     licenses wiring the tamper seam through the hot paths at all.
//   AdversaryHookParallel / AdversaryProperty — what each attack must do
//     (hub dominance, dead-link injection) and must NOT be able to do
//     (plant self-entries, break honest view invariants), on every engine.
//     The *Adversary* test names enroll the worker-lane hook paths in the
//     CI thread-sanitizer matrix (see .github/workflows/ci.yml).
//   TraceChurnTest / ScenarioRegistry / ScenarioGolden — trace semantics
//     (flash crowds, diurnal curves, Pareto sessions' predictable death
//     schedule), registry materialization, and one pinned digest per
//     registered scenario so a refactor cannot silently change what any
//     scenario computes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "pss/obs/graph_census.hpp"
#include "pss/scenarios/adversary.hpp"
#include "pss/scenarios/digest.hpp"
#include "pss/scenarios/scenario_spec.hpp"
#include "pss/scenarios/trace_churn.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/churn.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/sim/event_engine.hpp"
#include "pss/sim/network.hpp"
#include "pss/sim/parallel_cycle_engine.hpp"

namespace pss::scenarios {
namespace {

constexpr std::size_t kN = 400;
constexpr std::size_t kC = 8;
constexpr std::uint64_t kSeed = 42;
constexpr Cycle kCycles = 20;

sim::Network make_net(std::size_t n = kN, std::size_t c = kC,
                      std::uint64_t seed = kSeed) {
  return sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                     ProtocolOptions{c, false}, n, seed);
}

AdversaryConfig zero_byzantine(AdversaryKind kind) {
  AdversaryConfig config;
  config.kind = kind;
  config.byzantine_count = 0;
  config.forged_per_message = 4;
  config.fabricated_base = static_cast<NodeId>(4 * kN);
  config.fabricated_range = kN;
  return config;
}

AdversaryConfig hub_config(std::size_t byzantine) {
  AdversaryConfig config;
  config.kind = AdversaryKind::kHubPoison;
  config.byzantine_count = byzantine;
  return config;
}

AdversaryConfig forgery_config(std::size_t byzantine, std::size_t n) {
  AdversaryConfig config;
  config.kind = AdversaryKind::kForgery;
  config.byzantine_count = byzantine;
  config.forged_per_message = 4;
  config.fabricated_base = static_cast<NodeId>(4 * n);
  config.fabricated_range = n;
  config.seed = kSeed ^ 0xF0F0ULL;
  return config;
}

/// Checks the view invariants (I1 sorted, I2 distinct, I3 size <= c, no
/// self-entry) for every LIVE node — what no adversary may break.
void expect_views_normalized(const sim::Network& net, std::size_t c) {
  for (NodeId id = 0; id < net.size(); ++id) {
    if (!net.is_live(id)) continue;
    const auto view = net.view_span(id);
    ASSERT_LE(view.size(), c) << "node " << id;
    for (std::size_t i = 0; i < view.size(); ++i) {
      ASSERT_NE(view[i].address, id) << "self-entry in node " << id;
      if (i + 1 < view.size()) {
        ASSERT_TRUE(ByHopThenAddress{}(view[i], view[i + 1]))
            << "order violation in node " << id << " at " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ScenarioDifferential: count-0 adversary and uniform TraceChurn are
// bit-identical to the unhooked/plain paths.
// ---------------------------------------------------------------------------

TEST(ScenarioDifferential, ZeroByzantineCycleEngineIsBitIdentical) {
  obs::GraphCensus census;
  auto run = [&](sim::ExchangeTamper* tamper) {
    sim::Network net = make_net();
    sim::CycleEngine engine(net);
    if (tamper) engine.attach_adversary(*tamper);
    engine.run(kCycles);
    census.rebuild(net);
    return std::pair{state_digest(net), census_digest(census)};
  };
  const auto plain = run(nullptr);
  for (const AdversaryKind kind :
       {AdversaryKind::kHubPoison, AdversaryKind::kForgery}) {
    AdversaryModel none(zero_byzantine(kind));
    const auto hooked = run(&none);
    EXPECT_EQ(plain.first, hooked.first) << "state digest diverged";
    EXPECT_EQ(plain.second, hooked.second) << "census digest diverged";
    EXPECT_EQ(none.forged_messages(), 0u);
  }
}

TEST(ScenarioDifferential, ZeroByzantineParallelDeterministicIsBitIdentical) {
  auto run = [&](sim::ExchangeTamper* tamper, unsigned threads) {
    sim::Network net = make_net();
    sim::ParallelCycleEngine engine(
        net, {threads, sim::ParallelPolicy::kDeterministic});
    if (tamper) engine.attach_adversary(*tamper);
    engine.run(kCycles);
    return state_digest(net);
  };
  const std::uint64_t plain = run(nullptr, 4);
  AdversaryModel none(zero_byzantine(AdversaryKind::kHubPoison));
  EXPECT_EQ(plain, run(&none, 4));
  // And the hooked parallel run still matches the hooked sequential one.
  sim::Network seq_net = make_net();
  sim::CycleEngine seq(seq_net);
  AdversaryModel none_seq(zero_byzantine(AdversaryKind::kHubPoison));
  seq.attach_adversary(none_seq);
  seq.run(kCycles);
  EXPECT_EQ(plain, state_digest(seq_net));
}

TEST(ScenarioDifferential, ZeroByzantineEventEngineIsBitIdentical) {
  auto run = [&](sim::ExchangeTamper* tamper) {
    sim::Network net = make_net();
    sim::EventEngine engine(net, sim::EventEngineConfig{});
    if (tamper) engine.attach_adversary(*tamper);
    engine.run_cycles(kCycles);
    return state_digest(net);
  };
  const std::uint64_t plain = run(nullptr);
  AdversaryModel none_hub(zero_byzantine(AdversaryKind::kHubPoison));
  EXPECT_EQ(plain, run(&none_hub));
  AdversaryModel none_forge(zero_byzantine(AdversaryKind::kForgery));
  EXPECT_EQ(plain, run(&none_forge));
}

TEST(ScenarioDifferential, UniformTraceChurnMatchesChurnModel) {
  const sim::ChurnConfig config{.leaves_per_cycle = 4, .joins_per_cycle = 4,
                                .contacts_per_join = 3};
  auto run = [&](bool trace) {
    sim::Network net = make_net();
    sim::CycleEngine engine(net);
    sim::ChurnModel plain(config, Rng(kSeed ^ 0xABCULL));
    TraceChurn traced({config, {}, {}, {}}, Rng(kSeed ^ 0xABCULL));
    EXPECT_TRUE((TraceChurnConfig{config, {}, {}, {}}).is_uniform());
    for (Cycle t = 0; t < kCycles; ++t) {
      engine.run_cycle();
      if (trace) {
        traced.apply(net);
      } else {
        plain.apply(net);
      }
    }
    const auto& stats = trace ? traced.stats() : plain.stats();
    EXPECT_EQ(stats.joined, std::size_t{4} * kCycles);
    return state_digest(net);
  };
  std::uint64_t plain_digest = 0, trace_digest = 0;
  {
    SCOPED_TRACE("plain ChurnModel");
    plain_digest = run(false);
  }
  {
    SCOPED_TRACE("uniform TraceChurn");
    trace_digest = run(true);
  }
  EXPECT_EQ(plain_digest, trace_digest);
}

// ---------------------------------------------------------------------------
// AdversaryHookParallel: the hook on worker lanes — determinism and (under
// TSan, via the CI name regex) race-freedom.
// ---------------------------------------------------------------------------

TEST(AdversaryHookParallel, HookedDeterministicMatchesHookedSequential) {
  for (const bool forgery : {false, true}) {
    const AdversaryConfig config =
        forgery ? forgery_config(20, kN) : hub_config(20);
    sim::Network seq_net = make_net();
    sim::CycleEngine seq(seq_net);
    AdversaryModel seq_adv(config);
    seq.attach_adversary(seq_adv);
    seq.run(kCycles);
    const std::uint64_t seq_digest = state_digest(seq_net);
    ASSERT_GT(seq_adv.forged_messages(), 0u);
    for (const unsigned threads : {2u, 4u}) {
      sim::Network par_net = make_net();
      sim::ParallelCycleEngine par(
          par_net, {threads, sim::ParallelPolicy::kDeterministic});
      AdversaryModel par_adv(config);
      par.attach_adversary(par_adv);
      par.run(kCycles);
      // Forgery content depends only on (sender, per-sender call index),
      // so the hooked Deterministic schedule reproduces the sequential
      // run bit for bit at any thread count.
      EXPECT_EQ(seq_digest, state_digest(par_net))
          << (forgery ? "forgery" : "hub") << " threads=" << threads;
      EXPECT_EQ(seq_adv.forged_messages(), par_adv.forged_messages());
    }
  }
}

TEST(AdversaryHookParallel, RelaxedHookedRunKeepsInvariants) {
  // Relaxed mode makes no reproducibility promise, so assert what it does
  // promise with byzantine senders in the mix: race-freedom (TSan job),
  // normalized honest views, and forgery actually happening.
  sim::Network net = make_net();
  sim::ParallelCycleEngine engine(net, {4, sim::ParallelPolicy::kRelaxed});
  AdversaryModel adversary(forgery_config(20, kN));
  engine.attach_adversary(adversary);
  engine.run(kCycles);
  expect_views_normalized(net, kC);
  EXPECT_GT(adversary.forged_messages(), 0u);
}

TEST(AdversaryHookParallel, RelaxedHubPoisonSuppressesAging) {
  // Every hook site in relaxed_initiate must consult suppress_aging. With
  // ALL nodes byzantine hub poisoners, no view ever ages: entries are born
  // at hop 0 (bootstrap, self-pushes) or hop 1 (absorbed, +1 in-merge) and
  // can never grow older — a schedule-independent bound, so it holds in
  // Relaxed mode despite the nondeterministic exchange order. A single
  // missed suppress_aging check would push some entry past hop 1.
  sim::Network net = make_net();
  sim::ParallelCycleEngine engine(net, {4, sim::ParallelPolicy::kRelaxed});
  AdversaryModel adversary(hub_config(kN));  // everyone poisons
  engine.attach_adversary(adversary);
  engine.run(kCycles);
  for (NodeId id = 0; id < net.size(); ++id) {
    for (const auto& d : net.view_span(id)) {
      ASSERT_LE(d.hop_count, 1u) << "aged entry in node " << id;
    }
  }
}

// ---------------------------------------------------------------------------
// AdversaryProperty: what each attack must achieve and must not be able to.
// ---------------------------------------------------------------------------

TEST(AdversaryPropertyTest, HubPoisonerDominatesInDegree) {
  // The attack works: a 1% byzantine minority pushing {self, 0} forever
  // accumulates in-degree far beyond the honest ceiling (a view holds at
  // most c entries, so honest in-degree hovers around c).
  sim::Network net = make_net(600, 10, kSeed);
  sim::CycleEngine engine(net);
  AdversaryModel adversary(hub_config(6));
  engine.attach_adversary(adversary);
  engine.run(30);
  obs::GraphCensus census;
  census.rebuild(net);
  std::uint32_t max_byzantine = 0;
  for (NodeId id = 0; id < 6; ++id) {
    max_byzantine = std::max(max_byzantine, census.in_degree(id));
  }
  EXPECT_GT(max_byzantine, 2u * 10u)
      << "hub poisoning failed to concentrate in-degree";
}

TEST(AdversaryPropertyTest, NoForgedSelfEntrySurvivesAnyEngine) {
  // Forgery plants the receiver's own address at hop 0 in every forged
  // buffer; absorb's self-drop must discard it on every engine's path.
  const AdversaryConfig config = forgery_config(20, kN);
  auto check = [&](sim::Network& net) {
    for (NodeId id = 0; id < net.size(); ++id) {
      if (!net.is_live(id)) continue;
      for (const auto& d : net.view_span(id)) {
        ASSERT_NE(d.address, id) << "forged self-entry survived in " << id;
      }
    }
  };
  {
    sim::Network net = make_net();
    sim::CycleEngine engine(net);
    AdversaryModel adversary(config);
    engine.attach_adversary(adversary);
    engine.run(kCycles);
    ASSERT_GT(adversary.forged_messages(), 0u);
    check(net);
  }
  {
    sim::Network net = make_net();
    sim::EventEngine engine(net, sim::EventEngineConfig{});
    AdversaryModel adversary(config);
    engine.attach_adversary(adversary);
    engine.run_cycles(kCycles);
    ASSERT_GT(adversary.forged_messages(), 0u);
    check(net);
  }
}

TEST(AdversaryPropertyTest, ForgeryInjectsOnlyFabricatedDeadLinks) {
  sim::Network net = make_net();
  sim::CycleEngine engine(net);
  AdversaryModel adversary(forgery_config(20, kN));
  engine.attach_adversary(adversary);
  engine.run(kCycles);
  // Dead links appear (the attack works)...
  EXPECT_GT(net.count_dead_links(), 0u);
  // ...and every view entry is either a real node or a fabricated address
  // from the configured dead range — forgery cannot invent anything else.
  const NodeId base = static_cast<NodeId>(4 * kN);
  for (NodeId id = 0; id < net.size(); ++id) {
    if (!net.is_live(id)) continue;
    for (const auto& d : net.view_span(id)) {
      const bool real = d.address < kN;
      const bool fabricated = d.address >= base && d.address < base + kN;
      ASSERT_TRUE(real || fabricated) << "stray address " << d.address;
    }
  }
  expect_views_normalized(net, kC);
}

TEST(AdversaryPropertyTest, HonestViewsStayNormalizedUnderEveryAttack) {
  for (const bool forgery : {false, true}) {
    sim::Network net = make_net();
    sim::CycleEngine engine(net);
    AdversaryModel adversary(forgery ? forgery_config(20, kN)
                                     : hub_config(20));
    engine.attach_adversary(adversary);
    engine.run(kCycles);
    expect_views_normalized(net, kC);
  }
}

// ---------------------------------------------------------------------------
// TraceChurn semantics.
// ---------------------------------------------------------------------------

TEST(TraceChurnTest, FlashCrowdJoinsArriveInOneCycle) {
  sim::Network net = make_net(100, kC, kSeed);
  TraceChurnConfig config;
  config.base.contacts_per_join = 3;
  config.flash_crowds.push_back({3, 500});
  TraceChurn churn(config, Rng(7));
  ASSERT_FALSE(config.is_uniform());
  for (Cycle t = 0; t < 3; ++t) {
    churn.apply(net);
    EXPECT_EQ(net.live_count(), 100u) << "cycle " << t;
  }
  churn.apply(net);  // cycle 3: the burst
  EXPECT_EQ(net.live_count(), 600u);
  EXPECT_EQ(churn.stats().joined, 500u);
  // Every newcomer bootstrapped with a normalized contact view.
  for (NodeId id = 100; id < 600; ++id) {
    EXPECT_TRUE(net.is_live(id));
    EXPECT_GE(net.view_span(id).size(), 1u);
  }
  churn.apply(net);  // the burst fires exactly once
  EXPECT_EQ(net.live_count(), 600u);
}

TEST(TraceChurnTest, DiurnalFactorTracesTheSinusoid) {
  const DiurnalCurve curve{24, 0.5};
  EXPECT_DOUBLE_EQ(TraceChurn::diurnal_factor(curve, 0), 1.0);
  EXPECT_NEAR(TraceChurn::diurnal_factor(curve, 6), 1.5, 1e-12);   // peak
  EXPECT_NEAR(TraceChurn::diurnal_factor(curve, 18), 0.5, 1e-12);  // trough
  EXPECT_DOUBLE_EQ(TraceChurn::diurnal_factor(curve, 24),
                   TraceChurn::diurnal_factor(curve, 0));  // periodic
  EXPECT_DOUBLE_EQ(TraceChurn::diurnal_factor({0, 0.5}, 6), 1.0);  // disabled
  // Amplitude > 1 clamps at zero rather than going negative.
  EXPECT_DOUBLE_EQ(TraceChurn::diurnal_factor({24, 2.0}, 18), 0.0);
}

TEST(TraceChurnTest, DiurnalRatesModulateJoinVolume) {
  sim::Network net = make_net(2000, kC, kSeed);
  TraceChurnConfig config;
  config.base.joins_per_cycle = 100;
  config.base.contacts_per_join = 2;
  config.diurnal = {8, 1.0};
  TraceChurn churn(config, Rng(9));
  std::size_t last = 0;
  std::vector<std::size_t> per_cycle;
  for (Cycle t = 0; t < 8; ++t) {
    churn.apply(net);
    per_cycle.push_back(churn.stats().joined - last);
    last = churn.stats().joined;
  }
  const auto [lo, hi] = std::minmax_element(per_cycle.begin(), per_cycle.end());
  EXPECT_EQ(*hi, 200u);  // peak: factor 2.0
  EXPECT_EQ(*lo, 0u);    // trough: factor clamped to 0
  // The symmetric sinusoid preserves the mean rate over a whole period.
  EXPECT_EQ(churn.stats().joined, 800u);
}

TEST(TraceChurnTest, ParetoLifetimeIsPureAndHeavyTailed) {
  const SessionConfig sessions{1.5, 12.0, 99};
  // Pure: same (seed, id) in, same lifetime out.
  for (const NodeId id : {0u, 1u, 17u, 100000u}) {
    EXPECT_EQ(TraceChurn::pareto_lifetime(sessions, id),
              TraceChurn::pareto_lifetime(sessions, id));
  }
  // Bounded below by xm, and the tail reaches well past the mean.
  Cycle longest = 0;
  double sum = 0;
  constexpr NodeId kSamples = 20000;
  for (NodeId id = 0; id < kSamples; ++id) {
    const Cycle life = TraceChurn::pareto_lifetime(sessions, id);
    ASSERT_GE(life, 12u);
    longest = std::max(longest, life);
    sum += static_cast<double>(life);
  }
  const double mean = sum / kSamples;
  // Pareto(1.5, 12): mean 36; the empirical mean of 20k draws lands near
  // it (wide tolerance — alpha 1.5 has infinite variance), and the longest
  // session dwarfs the mean (the heavy tail churn models must survive).
  EXPECT_GT(mean, 24.0);
  EXPECT_GT(longest, 50u * 12u);
}

TEST(TraceChurnTest, SessionDeathsFollowThePredictedSchedule) {
  // 10 nodes, no joins: every node's death cycle is a pure function of the
  // session seed, so the whole kill trace is predictable in advance.
  const SessionConfig sessions{1.5, 2.0, 4242};
  sim::Network net = make_net(10, 3, kSeed);
  TraceChurnConfig config;
  config.base.contacts_per_join = 1;  // floor = 2
  config.sessions = sessions;
  TraceChurn churn(config, Rng(11));
  std::vector<Cycle> death(10);
  for (NodeId id = 0; id < 10; ++id) {
    death[id] = TraceChurn::pareto_lifetime(sessions, id);
  }
  // The two (death, id)-largest nodes must survive forever (kill floor 2).
  std::vector<NodeId> order(10);
  for (NodeId id = 0; id < 10; ++id) order[id] = id;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return std::pair{death[a], a} < std::pair{death[b], b};
  });
  const Cycle horizon = *std::max_element(death.begin(), death.end()) + 2;
  for (Cycle t = 0; t < horizon; ++t) {
    churn.apply(net);  // trace clock now t+1
    for (NodeId id = 0; id < 10; ++id) {
      if (id == order[8] || id == order[9]) continue;  // floor survivors
      // Node `id` dies in the apply() whose trace clock reaches death[id]
      // (deaths are scheduled at cycle_ = lifetime and processed when
      // cycle_ == that value, i.e. apply() call number death[id]).
      EXPECT_EQ(net.is_live(id), t + 1 <= death[id])
          << "node " << id << " at cycle " << t;
    }
  }
  EXPECT_EQ(net.live_count(), 2u);
  EXPECT_TRUE(net.is_live(order[8]));
  EXPECT_TRUE(net.is_live(order[9]));
  EXPECT_EQ(churn.pending_deaths(), 2u);  // deferred, never dropped
}

TEST(TraceChurnTest, KillFloorHoldsUnderRateChurn) {
  sim::Network net = make_net(20, 3, kSeed);
  TraceChurnConfig config;
  config.base.leaves_per_cycle = 50;
  config.base.contacts_per_join = 2;  // floor = 3
  config.diurnal = {4, 0.5};          // non-uniform so the trace path runs
  TraceChurn churn(config, Rng(13));
  for (Cycle t = 0; t < 6; ++t) {
    churn.apply(net);
    EXPECT_GE(net.live_count(), 3u);
  }
  EXPECT_EQ(net.live_count(), 3u);
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(ScenarioRegistry, RegistryIsStableAndSearchable) {
  const auto registry = scenario_registry();
  const std::vector<std::string> expected = {
      "baseline",        "uniform-churn", "flash-crowd", "diurnal",
      "pareto-sessions", "hub-poison",    "forgery"};
  ASSERT_EQ(registry.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(registry[i].name, expected[i]);
    EXPECT_FALSE(registry[i].summary.empty());
    EXPECT_EQ(find_scenario(expected[i]), &registry[i]);
  }
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
}

TEST(ScenarioRegistry, MaterializationScalesWithPopulation) {
  const ScenarioSpec* forgery = find_scenario("forgery");
  ASSERT_NE(forgery, nullptr);
  EXPECT_TRUE(forgery->has_adversary());
  EXPECT_FALSE(forgery->has_churn());
  const AdversaryConfig small = forgery->adversary_for(100, 30, 1);
  const AdversaryConfig large = forgery->adversary_for(100000, 30, 1);
  EXPECT_EQ(small.byzantine_count, 1u);  // max(1, 1% of 100)
  EXPECT_EQ(large.byzantine_count, 1000u);
  EXPECT_EQ(large.fabricated_base, 400000u);
  // The forgery payload respects the tamper buffer contract (<= c).
  EXPECT_EQ(forgery->adversary_for(1000, 4, 1).forged_per_message, 4u);

  const ScenarioSpec* flash = find_scenario("flash-crowd");
  ASSERT_NE(flash, nullptr);
  EXPECT_TRUE(flash->has_churn());
  const TraceChurnConfig churn = flash->churn_for(100000, 1);
  ASSERT_EQ(churn.flash_crowds.size(), 1u);
  // The tentpole's flash-crowd scale: 10^5 joins in a single cycle.
  EXPECT_EQ(churn.flash_crowds[0].joins, 100000u);
  EXPECT_FALSE(churn.is_uniform());

  const ScenarioSpec* baseline = find_scenario("baseline");
  ASSERT_NE(baseline, nullptr);
  EXPECT_FALSE(baseline->has_adversary());
  EXPECT_FALSE(baseline->has_churn());
}

// ---------------------------------------------------------------------------
// Golden traces: one pinned digest per registered scenario. The runner
// mirrors bench/scale_scenarios' scan loop at a fixed small configuration;
// a mismatch means a semantic change to engines, adversary, churn or
// census — bump the constants ONLY for an intentional change, and say so
// in the commit message.
// ---------------------------------------------------------------------------

std::uint64_t golden_run(const ScenarioSpec& scen) {
  constexpr std::size_t kGoldenN = 500;
  constexpr std::size_t kGoldenC = 10;
  constexpr Cycle kGoldenCycles = 12;
  sim::Network net = make_net(kGoldenN, kGoldenC, kSeed);
  sim::CycleEngine engine(net);
  AdversaryModel adversary(
      scen.adversary_for(kGoldenN, kGoldenC, kSeed ^ 0xAD5ULL));
  if (scen.has_adversary()) engine.attach_adversary(adversary);
  TraceChurn churn(scen.churn_for(kGoldenN, kSeed ^ 0x5E55ULL),
                   Rng(kSeed ^ 0xC0FFEEULL));
  for (Cycle t = 0; t < kGoldenCycles; ++t) {
    engine.run_cycle();
    if (scen.has_churn()) churn.apply(net);
  }
  return state_digest(net);
}

TEST(ScenarioGolden, EveryRegisteredScenarioMatchesItsPinnedDigest) {
  // Generated by this very runner (seed 42, n=500, c=10, 12 cycles);
  // deterministic across platforms up to libm sin/pow rounding, which
  // only diurnal (sin) and pareto-sessions (pow) consume — glibc has
  // correctly-rounded pow since 2.28, so in practice these hold anywhere
  // CI runs.
  const std::vector<std::pair<std::string, std::uint64_t>> golden = {
      {"baseline", 0x447e15a41d272308ULL},
      {"uniform-churn", 0xfb81eea79a940678ULL},
      {"flash-crowd", 0xab49b930c361569eULL},
      {"diurnal", 0x4af1933786e87843ULL},
      {"pareto-sessions", 0x9f7ece9ed5ca0dcfULL},
      {"hub-poison", 0xf46ff9ca68664462ULL},
      {"forgery", 0x86832ec7a2bd21b2ULL},
  };
  const auto registry = scenario_registry();
  ASSERT_EQ(golden.size(), registry.size());
  for (std::size_t i = 0; i < registry.size(); ++i) {
    ASSERT_EQ(golden[i].first, registry[i].name);
    const std::uint64_t actual = golden_run(registry[i]);
    EXPECT_EQ(actual, golden[i].second)
        << "scenario '" << registry[i].name << "' digest changed; actual 0x"
        << std::hex << actual;
  }
}

}  // namespace
}  // namespace pss::scenarios
