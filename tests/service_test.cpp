// Unit tests for the peer sampling service API (init/getPeer) and the
// ideal uniform baseline sampler.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "pss/service/ideal_uniform_sampler.hpp"
#include "pss/service/peer_sampling_service.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"

namespace pss {
namespace {

GossipNode make_node(NodeId self = 0) {
  return GossipNode(self, ProtocolSpec::newscast(), ProtocolOptions{8, false},
                    Rng(self + 1));
}

TEST(PeerSamplingService, InitSeedsViewFromContacts) {
  auto node = make_node(0);
  PeerSamplingService service(node, Rng(2));
  EXPECT_FALSE(service.initialized());
  const std::vector<NodeId> contacts{3, 4, 5};
  service.init(contacts);
  EXPECT_TRUE(service.initialized());
  EXPECT_EQ(node.view().size(), 3u);
  for (NodeId c : contacts) EXPECT_TRUE(node.view().contains(c));
}

TEST(PeerSamplingService, InitIsIdempotent) {
  auto node = make_node(0);
  PeerSamplingService service(node, Rng(2));
  const std::vector<NodeId> first{1, 2};
  const std::vector<NodeId> second{7, 8};
  service.init(first);
  service.init(second);  // must be ignored per the specification
  EXPECT_TRUE(node.view().contains(1));
  EXPECT_FALSE(node.view().contains(7));
}

TEST(PeerSamplingService, InitDropsSelfContact) {
  auto node = make_node(5);
  PeerSamplingService service(node, Rng(3));
  const std::vector<NodeId> contacts{5, 6};
  service.init(contacts);
  EXPECT_FALSE(node.view().contains(5));
  EXPECT_TRUE(node.view().contains(6));
}

TEST(PeerSamplingService, GetPeerOnEmptyViewReturnsInvalid) {
  auto node = make_node(0);
  PeerSamplingService service(node, Rng(4));
  EXPECT_EQ(service.get_peer(), kInvalidNode);
  service.init(std::vector<NodeId>{});
  EXPECT_EQ(service.get_peer(), kInvalidNode);
}

TEST(PeerSamplingService, GetPeerSamplesFromView) {
  auto node = make_node(0);
  PeerSamplingService service(node, Rng(5));
  const std::vector<NodeId> contacts{1, 2, 3, 4};
  service.init(contacts);
  std::set<NodeId> seen;
  for (int i = 0; i < 500; ++i) {
    const NodeId p = service.get_peer();
    EXPECT_TRUE(node.view().contains(p));
    seen.insert(p);
  }
  EXPECT_EQ(seen.size(), 4u);  // every view entry eventually sampled
}

TEST(PeerSamplingService, UniformStrategyIsRoughlyUniform) {
  auto node = make_node(0);
  PeerSamplingService service(node, Rng(6));
  const std::vector<NodeId> contacts{1, 2, 3, 4, 5};
  service.init(contacts);
  std::map<NodeId, int> counts;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) ++counts[service.get_peer()];
  for (const auto& [peer, count] : counts) {
    EXPECT_NEAR(count, kDraws / 5, kDraws / 5 * 0.15) << "peer " << peer;
  }
}

TEST(PeerSamplingService, ShuffledQueueMaximizesDiversity) {
  auto node = make_node(0);
  PeerSamplingService service(node, Rng(7),
                              PeerSamplingService::GetPeerStrategy::kShuffledQueue);
  const std::vector<NodeId> contacts{1, 2, 3, 4, 5, 6};
  service.init(contacts);
  // Any window of 6 consecutive samples contains all 6 distinct peers.
  for (int round = 0; round < 20; ++round) {
    std::set<NodeId> window;
    for (int i = 0; i < 6; ++i) window.insert(service.get_peer());
    EXPECT_EQ(window.size(), 6u) << "round " << round;
  }
}

TEST(PeerSamplingService, ShuffledQueueSkipsEvictedEntries) {
  auto node = make_node(0);
  PeerSamplingService service(node, Rng(8),
                              PeerSamplingService::GetPeerStrategy::kShuffledQueue);
  const std::vector<NodeId> contacts{1, 2, 3};
  service.init(contacts);
  (void)service.get_peer();  // queue now primed with the old view
  node.set_view(View{{9, 0}});  // the gossip layer replaced the view
  for (int i = 0; i < 5; ++i) EXPECT_EQ(service.get_peer(), 9u);
}

TEST(PeerSamplingService, GetPeersReturnsKSamples) {
  auto node = make_node(0);
  PeerSamplingService service(node, Rng(9));
  const std::vector<NodeId> contacts{1, 2, 3};
  service.init(contacts);
  EXPECT_EQ(service.get_peers(10).size(), 10u);
  auto empty_node = make_node(1);
  PeerSamplingService empty_service(empty_node, Rng(10));
  EXPECT_TRUE(empty_service.get_peers(3).empty());
}

TEST(PeerSamplingService, WorksOverRunningOverlay) {
  // End-to-end: services on a live overlay return ever-changing peers.
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{10, false}, 100, 11);
  sim::CycleEngine engine(net);
  PeerSamplingService service(net.node(0), Rng(12));
  std::set<NodeId> seen;
  for (int cycle = 0; cycle < 30; ++cycle) {
    engine.run_cycle();
    for (int i = 0; i < 5; ++i) seen.insert(service.get_peer());
  }
  // The union of samples over time must cover far more than one view.
  EXPECT_GT(seen.size(), 20u);
  EXPECT_FALSE(seen.contains(0));       // never returns the node itself
  EXPECT_FALSE(seen.contains(kInvalidNode));
}

TEST(IdealUniformSampler, NeverReturnsSelfAndCoversGroup) {
  IdealUniformSampler sampler(3, 10, Rng(13));
  std::set<NodeId> seen;
  for (int i = 0; i < 2000; ++i) {
    const NodeId p = sampler.get_peer();
    EXPECT_NE(p, 3u);
    EXPECT_LT(p, 10u);
    seen.insert(p);
  }
  EXPECT_EQ(seen.size(), 9u);
}

TEST(IdealUniformSampler, UniformityChiSquareish) {
  IdealUniformSampler sampler(0, 5, Rng(14));
  std::map<NodeId, int> counts;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.get_peer()];
  for (const auto& [peer, count] : counts) {
    EXPECT_NEAR(count, kDraws / 4, kDraws / 4 * 0.1) << "peer " << peer;
  }
}

TEST(IdealUniformSampler, TinyGroups) {
  IdealUniformSampler lonely(0, 1, Rng(15));
  EXPECT_EQ(lonely.get_peer(), kInvalidNode);
  IdealUniformSampler pair(0, 2, Rng(16));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(pair.get_peer(), 1u);
}

TEST(IdealUniformSampler, GroupResizeRespected) {
  IdealUniformSampler sampler(0, 3, Rng(17));
  sampler.set_group_size(6);
  std::set<NodeId> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(sampler.get_peer());
  EXPECT_EQ(seen.size(), 5u);
}

}  // namespace
}  // namespace pss
