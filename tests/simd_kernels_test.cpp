// The SIMD dispatch contract (simd.hpp): every vector kernel is
// byte-for-byte identical to the scalar reference oracle — same output
// arrays, same Rng consumption — at every tier the CPU supports. Each test
// forces a tier with set_level_for_testing, replays the kernel against the
// scalar result, and restores the detected tier on exit (the level is
// process-global and other suites in this binary depend on it).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "pss/membership/flat_ops.hpp"
#include "pss/membership/flat_view_store.hpp"
#include "pss/membership/simd.hpp"
#include "pss/protocol/flat_exchange.hpp"
#include "pss/scenarios/digest.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/event_engine.hpp"
#include "pss/sim/network.hpp"

namespace pss {
namespace {

/// Restores the detected dispatch tier when a test scope ends.
struct LevelGuard {
  ~LevelGuard() { simd::set_level_for_testing(simd::detected_level()); }
};

/// Tiers to exercise: scalar always, plus every hardware tier up to what
/// this machine actually supports (requests above it would be clamped and
/// silently re-test the same code path).
std::vector<simd::Level> available_levels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::detected_level() >= simd::Level::kSSE2) {
    levels.push_back(simd::Level::kSSE2);
  }
  if (simd::detected_level() >= simd::Level::kAVX2) {
    levels.push_back(simd::Level::kAVX2);
  }
  return levels;
}

std::vector<NodeDescriptor> random_sorted_run(Rng& rng, std::size_t size,
                                              NodeId address_space,
                                              HopCount max_hop) {
  std::vector<NodeDescriptor> entries;
  for (std::size_t i = 0; i < size; ++i) {
    entries.push_back({static_cast<NodeId>(rng.below(address_space)),
                       static_cast<HopCount>(rng.below(max_hop))});
  }
  std::sort(entries.begin(), entries.end(), ByHopThenAddress{});
  return entries;  // duplicates (same address, same or different hop) kept
}

void expect_bytes_equal(const NodeDescriptor* a, const NodeDescriptor* b,
                        std::size_t n, const char* what) {
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(a[i].address, b[i].address) << what << " entry " << i;
    ASSERT_EQ(a[i].hop_count, b[i].hop_count) << what << " entry " << i;
  }
}

// --- Kernel-level differentials -------------------------------------------

TEST(SimdKernels, AgedCopyMatchesScalarAtEveryTierAndLength) {
  LevelGuard guard;
  Rng rng(41);
  // Ragged lengths straddle every vector width boundary (2-wide SSE2,
  // 4-wide AVX2) including the empty and scalar-tail-only cases.
  for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 31u, 100u}) {
    for (HopCount age : {HopCount{0}, HopCount{1}, HopCount{7}}) {
      const auto src = random_sorted_run(rng, n, 50, 12);
      std::vector<NodeDescriptor> ref(n), out(n);
      simd::set_level_for_testing(simd::Level::kScalar);
      simd::aged_copy(ref.data(), src.data(), n, age);
      for (simd::Level level : available_levels()) {
        simd::set_level_for_testing(level);
        std::fill(out.begin(), out.end(), NodeDescriptor{0, 0});
        simd::aged_copy(out.data(), src.data(), n, age);
        expect_bytes_equal(ref.data(), out.data(), n, "aged_copy");
      }
    }
  }
}

TEST(SimdKernels, AgeWriteBothMatchesScalarAtEveryTierAndLength) {
  LevelGuard guard;
  Rng rng(43);
  for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 8u, 9u, 30u, 31u, 100u}) {
    const auto src = random_sorted_run(rng, n, 50, 12);
    std::vector<NodeDescriptor> ref_view = src, ref_out(n);
    simd::set_level_for_testing(simd::Level::kScalar);
    simd::age_write_both(ref_view.data(), ref_out.data(), n);
    for (simd::Level level : available_levels()) {
      simd::set_level_for_testing(level);
      std::vector<NodeDescriptor> view = src, out(n);
      simd::age_write_both(view.data(), out.data(), n);
      expect_bytes_equal(ref_view.data(), view.data(), n, "aged view");
      expect_bytes_equal(ref_out.data(), out.data(), n, "aged copy");
      // The fused kernel must equal the two-pass composition too.
      std::vector<NodeDescriptor> two_pass = src;
      simd::age_in_place(two_pass.data(), n);
      expect_bytes_equal(two_pass.data(), view.data(), n, "two-pass");
    }
  }
}

TEST(SimdKernels, CountLessMatchesScalarForAllProbePositions) {
  LevelGuard guard;
  Rng rng(47);
  for (std::size_t n : {0u, 1u, 3u, 4u, 5u, 8u, 13u, 31u}) {
    const auto run = random_sorted_run(rng, n, 30, 6);
    // Probe with every entry's own key, keys between entries, and the
    // extremes — covers split == 0, == n, and every interior position.
    std::vector<std::uint64_t> probes = {0, ~std::uint64_t{0}};
    for (const NodeDescriptor& d : run) {
      const std::uint64_t k =
          (static_cast<std::uint64_t>(d.hop_count) << 32) | d.address;
      probes.push_back(k);
      probes.push_back(k + 1);
    }
    for (std::uint64_t key : probes) {
      simd::set_level_for_testing(simd::Level::kScalar);
      const std::size_t ref = simd::count_less(run.data(), n, key);
      for (simd::Level level : available_levels()) {
        simd::set_level_for_testing(level);
        EXPECT_EQ(ref, simd::count_less(run.data(), n, key));
      }
    }
  }
}

TEST(SimdKernels, MergeUnionMatchesScalarOnRaggedRuns) {
  LevelGuard guard;
  Rng rng(53);
  // Every (na, nb) shape the dispatch gate admits plus shapes around it;
  // small address space forces duplicates within and across runs.
  const std::size_t sizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 60};
  for (std::size_t na : sizes) {
    for (std::size_t nb : sizes) {
      const auto a = random_sorted_run(rng, na, 25, 5);
      const auto b = random_sorted_run(rng, nb, 25, 5);
      // Stage with sentinel padding exactly as the flat_ops front-end does.
      std::vector<NodeDescriptor> pad_a(na + 8), pad_b(nb + 8);
      std::copy(a.begin(), a.end(), pad_a.begin());
      std::copy(b.begin(), b.end(), pad_b.begin());
      simd::pad_after(pad_a.data(), na);
      simd::pad_after(pad_b.data(), nb);
      std::vector<NodeDescriptor> ref(na + nb + 8), out(na + nb + 8);
      simd::set_level_for_testing(simd::Level::kScalar);
      simd::merge_union(pad_a.data(), na, pad_b.data(), nb, ref.data());
      for (simd::Level level : available_levels()) {
        simd::set_level_for_testing(level);
        std::fill(out.begin(), out.end(), NodeDescriptor{0, 0});
        simd::merge_union(pad_a.data(), na, pad_b.data(), nb, out.data());
        // Only the first na + nb entries are the contract; the vector
        // kernel may spill sentinels beyond them.
        expect_bytes_equal(ref.data(), out.data(), na + nb, "merge_union");
      }
      if (::testing::Test::HasFailure()) {
        FAIL() << "merge_union diverged at na=" << na << " nb=" << nb;
      }
    }
  }
}

TEST(SimdKernels, MergeIntoMatchesScalarIncludingRngStream) {
  LevelGuard guard;
  Rng rng(59);
  flat::Scratch scratch;
  for (int trial = 0; trial < 200; ++trial) {
    auto a = random_sorted_run(rng, rng.below(41), 30, 8);
    auto b = random_sorted_run(rng, rng.below(41), 30, 8);
    flat::normalize(a);
    flat::normalize(b);
    const auto age = static_cast<HopCount>(rng.below(3));
    std::vector<NodeDescriptor> ref, out;
    simd::set_level_for_testing(simd::Level::kScalar);
    flat::merge_into(flat::DescSpan(a.data(), a.size()),
                     flat::DescSpan(b.data(), b.size()), ref, scratch, age);
    for (simd::Level level : available_levels()) {
      simd::set_level_for_testing(level);
      flat::merge_into(flat::DescSpan(a.data(), a.size()),
                       flat::DescSpan(b.data(), b.size()), out, scratch, age);
      ASSERT_EQ(ref.size(), out.size()) << "trial " << trial;
      expect_bytes_equal(ref.data(), out.data(), ref.size(), "merge_into");
    }
  }
}

TEST(SimdKernels, MergeSelectHeadMatchesScalarIncludingRngStream) {
  LevelGuard guard;
  Rng rng(61);
  flat::Scratch ref_scratch, out_scratch;
  // c sweeps the ISSUE matrix; c <= kMaxEntries keeps the array kernel
  // engaged (the c = 100 leg exercises it with large boundary classes).
  for (std::size_t c : {1u, 2u, 30u, 31u, 100u}) {
    for (int trial = 0; trial < 120; ++trial) {
      auto a = random_sorted_run(rng, rng.below(33), 30, 6);
      auto b = random_sorted_run(rng, rng.below(33), 30, 6);
      flat::normalize(a);
      flat::normalize(b);
      const auto age = static_cast<HopCount>(rng.below(3));
      // `self` sometimes present in the inputs (the self-skip edge case),
      // sometimes absent.
      const NodeId self = static_cast<NodeId>(rng.below(35));
      const std::uint64_t stream_seed = rng.below(1u << 30);
      Rng ref_rng(stream_seed);
      simd::set_level_for_testing(simd::Level::kScalar);
      const std::size_t ref_n = flat::merge_select_head_arr(
          flat::DescSpan(a.data(), a.size()), flat::DescSpan(b.data(), b.size()),
          self, c, ref_rng, ref_scratch, age);
      // One post-call draw pins the reference stream position; every
      // lane's generator must land on the same value after the kernel.
      const std::uint32_t ref_probe = ref_rng.below(1u << 20);
      for (simd::Level level : available_levels()) {
        simd::set_level_for_testing(level);
        Rng lane_rng(stream_seed);
        const std::size_t out_n = flat::merge_select_head_arr(
            flat::DescSpan(a.data(), a.size()),
            flat::DescSpan(b.data(), b.size()), self, c, lane_rng, out_scratch,
            age);
        ASSERT_EQ(ref_n, out_n) << "c=" << c << " trial=" << trial;
        expect_bytes_equal(ref_scratch.merge_arr.data(),
                           out_scratch.merge_arr.data(), ref_n,
                           "merge_select_head");
        EXPECT_EQ(ref_probe, lane_rng.below(1u << 20))
            << "Rng stream diverged at c=" << c << " trial=" << trial;
      }
    }
  }
}

TEST(SimdKernels, WriteActiveBufferInsertionPointMatchesScalar) {
  LevelGuard guard;
  Rng rng(67);
  for (int trial = 0; trial < 100; ++trial) {
    auto view = random_sorted_run(rng, rng.below(33), 40, 6);
    flat::normalize(view);
    // Sweep self across below / inside / above the run's key range,
    // including addresses equal to run entries (self is then removed —
    // write_active_buffer requires self not in view).
    const NodeId self = static_cast<NodeId>(rng.below(45));
    view.erase(std::remove_if(view.begin(), view.end(),
                              [&](const NodeDescriptor& d) {
                                return d.address == self;
                              }),
               view.end());
    std::vector<NodeDescriptor> ref(view.size() + 1), out(view.size() + 1);
    simd::set_level_for_testing(simd::Level::kScalar);
    const auto ref_n = flat::write_active_buffer(
        flat::DescSpan(view.data(), view.size()), self, true, ref.data());
    for (simd::Level level : available_levels()) {
      simd::set_level_for_testing(level);
      const auto out_n = flat::write_active_buffer(
          flat::DescSpan(view.data(), view.size()), self, true, out.data());
      ASSERT_EQ(ref_n, out_n);
      expect_bytes_equal(ref.data(), out.data(), ref_n, "active buffer");
    }
  }
}

TEST(SimdKernels, AgeWriteActiveBufferEqualsAgeThenWrite) {
  LevelGuard guard;
  Rng rng(71);
  for (simd::Level level : available_levels()) {
    simd::set_level_for_testing(level);
    for (int trial = 0; trial < 50; ++trial) {
      auto entries = random_sorted_run(rng, rng.below(9), 40, 6);
      flat::normalize(entries);
      const NodeId self_addr = 41;  // outside the address space above
      // Two identical stores; one runs the fused kernel, one the two-pass
      // reference composition.
      FlatViewStore fused(8), split(8);
      const NodeId slot = fused.add_node();
      (void)split.add_node();
      fused.assign(slot, entries);
      split.assign(slot, entries);
      std::vector<NodeDescriptor> fused_buf(entries.size() + 1);
      std::vector<NodeDescriptor> split_buf(entries.size() + 1);
      const auto fused_n = flat::age_write_active_buffer(
          fused, slot, self_addr, true, fused_buf.data());
      split.age(slot);
      const auto split_n = flat::write_active_buffer(
          split.view_of(slot), self_addr, true, split_buf.data());
      ASSERT_EQ(fused_n, split_n);
      expect_bytes_equal(fused_buf.data(), split_buf.data(), fused_n,
                         "fused wakeup buffer");
      const auto fv = fused.view_of(slot);
      const auto sv = split.view_of(slot);
      ASSERT_EQ(fv.size(), sv.size());
      expect_bytes_equal(fv.data(), sv.data(), fv.size(), "aged slot");
    }
  }
}

// --- Whole-protocol differential ------------------------------------------

TEST(SimdKernels, AllProtocolsDigestEqualScalarVsVector) {
  LevelGuard guard;
  // End-to-end: a full async run per evaluated protocol must land on the
  // same state digest under the scalar oracle and under every hardware
  // tier — the vector kernels change nothing observable anywhere in the
  // wakeup/request/reply pipeline.
  sim::EventEngineConfig cfg;
  cfg.drop_probability = 0.1;  // exercise the aging-after-drop path too
  for (const ProtocolSpec& spec : ProtocolSpec::evaluated()) {
    simd::set_level_for_testing(simd::Level::kScalar);
    auto ref_net =
        sim::bootstrap::make_random(spec, ProtocolOptions{8, false}, 100, 17);
    sim::EventEngine ref(ref_net, cfg);
    ref.run_until(8.5);
    const std::uint64_t ref_digest = scenarios::state_digest(ref_net);
    for (simd::Level level : available_levels()) {
      simd::set_level_for_testing(level);
      auto net = sim::bootstrap::make_random(spec, ProtocolOptions{8, false},
                                             100, 17);
      sim::EventEngine engine(net, cfg);
      engine.run_until(8.5);
      EXPECT_EQ(ref_digest, scenarios::state_digest(net))
          << spec.name() << " diverged at level "
          << static_cast<int>(level);
    }
  }
}

TEST(SimdKernels, ViewSizeSweepDigestEqualScalarVsVector) {
  LevelGuard guard;
  // The ISSUE's c matrix end-to-end. c = 100 pushes request merges past
  // AddressSet::kMaxEntries, covering the vector-free fallback staying
  // consistent with everything around it.
  for (std::size_t c : {1u, 2u, 30u, 31u, 100u}) {
    simd::set_level_for_testing(simd::Level::kScalar);
    auto ref_net = sim::bootstrap::make_random(
        ProtocolSpec::newscast(), ProtocolOptions{c, false}, 80, 23);
    sim::EventEngine ref(ref_net, sim::EventEngineConfig{});
    ref.run_until(6.5);
    const std::uint64_t ref_digest = scenarios::state_digest(ref_net);
    for (simd::Level level : available_levels()) {
      simd::set_level_for_testing(level);
      auto net = sim::bootstrap::make_random(
          ProtocolSpec::newscast(), ProtocolOptions{c, false}, 80, 23);
      sim::EventEngine engine(net, sim::EventEngineConfig{});
      engine.run_until(6.5);
      EXPECT_EQ(ref_digest, scenarios::state_digest(net)) << "c=" << c;
    }
  }
}

TEST(SimdKernels, DispatchLevelClampsAndRestores) {
  LevelGuard guard;
  simd::set_level_for_testing(simd::Level::kScalar);
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  // Requests above the detected tier clamp to it — a kernel is never
  // dispatched past what the CPU reports.
  simd::set_level_for_testing(simd::Level::kAVX2);
  EXPECT_LE(simd::active_level(), simd::detected_level());
  simd::set_level_for_testing(simd::detected_level());
  EXPECT_EQ(simd::active_level(), simd::detected_level());
}

}  // namespace
}  // namespace pss
