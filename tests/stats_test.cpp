// Unit tests for descriptive statistics, autocorrelation, and histograms
// against hand-computed values.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "pss/stats/autocorrelation.hpp"
#include "pss/stats/descriptive.hpp"
#include "pss/stats/histogram.hpp"

namespace pss::stats {
namespace {

TEST(Accumulator, MeanAndVarianceKnownSeries) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance_population(), 4.0, 1e-12);
  EXPECT_NEAR(acc.variance_sample(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stddev_population(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, DegenerateCases) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.variance_population(), 0.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  EXPECT_DOUBLE_EQ(acc.variance_sample(), 0.0);  // n-1 undefined -> 0
}

TEST(Accumulator, NumericallyStableOnLargeOffset) {
  // Welford must not lose precision when values share a large offset.
  Accumulator acc;
  for (int i = 0; i < 1000; ++i) acc.add(1e9 + (i % 2));
  EXPECT_NEAR(acc.variance_population(), 0.25, 1e-6);
}

TEST(FreeFunctions, MatchAccumulator) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance_population(xs), 2.0);
  EXPECT_DOUBLE_EQ(variance_sample(xs), 2.5);
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.variance_sample, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Autocorrelation, LagZeroIsOne) {
  const std::vector<double> xs{1, 3, 2, 5, 4, 6};
  const auto r = autocorrelation(xs, 3);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_EQ(r.size(), 4u);
}

TEST(Autocorrelation, AlternatingSeriesNegativeAtLagOne) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
  const auto r = autocorrelation(xs, 4);
  EXPECT_NEAR(r[1], -1.0, 0.05);
  EXPECT_NEAR(r[2], 1.0, 0.05);
  EXPECT_NEAR(r[3], -1.0, 0.05);
}

TEST(Autocorrelation, PeriodicSeriesPeaksAtPeriod) {
  std::vector<double> xs;
  for (int i = 0; i < 240; ++i) xs.push_back(std::sin(2 * M_PI * i / 12.0));
  const auto r = autocorrelation(xs, 24);
  EXPECT_GT(r[12], 0.9);   // full period
  EXPECT_LT(r[6], -0.9);   // half period
  EXPECT_GT(r[24], 0.85);  // two periods
}

TEST(Autocorrelation, WhiteNoiseStaysInsideBand) {
  // A linear-congruential pseudo-noise series: nearly all lags must fall
  // inside the 99% confidence band.
  std::vector<double> xs;
  std::uint64_t state = 12345;
  for (int i = 0; i < 500; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    xs.push_back(static_cast<double>(state >> 40));
  }
  EXPECT_LT(autocorrelation_excess_fraction(xs, 50), 0.1);
}

TEST(Autocorrelation, ConstantSeriesConvention) {
  const std::vector<double> xs(20, 3.0);
  const auto r = autocorrelation(xs, 5);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  for (int lag = 1; lag <= 5; ++lag) EXPECT_DOUBLE_EQ(r[lag], 0.0);
}

TEST(Autocorrelation, PreconditionsEnforced) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_THROW(autocorrelation(xs, 3), std::logic_error);  // lag >= length
  const std::vector<double> one{1.0};
  EXPECT_THROW(autocorrelation(one, 0), std::logic_error);
}

TEST(Autocorrelation, Confidence99Formula) {
  EXPECT_NEAR(autocorrelation_confidence99(300), 2.5758 / std::sqrt(300.0), 1e-4);
  EXPECT_THROW(autocorrelation_confidence99(0), std::logic_error);
}

TEST(Autocorrelation, StronglyCorrelatedSeriesExceedsBand) {
  // Slow ramp: heavy positive autocorrelation at small lags.
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(static_cast<double>(i));
  EXPECT_GT(autocorrelation_excess_fraction(xs, 20), 0.9);
}

TEST(Histogram, AddAndCount) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  h.add(5);
  h.add(5, 2);
  h.add(9);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(5), 3u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(7), 0u);
  EXPECT_EQ(h.min_value(), 5u);
  EXPECT_EQ(h.max_value(), 9u);
  EXPECT_DOUBLE_EQ(h.mean(), (5.0 * 3 + 9) / 4);
}

TEST(Histogram, FromSamplesAndPoints) {
  const std::vector<std::size_t> samples{1, 2, 2, 3, 3, 3};
  Histogram h(samples);
  const auto pts = h.points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0], (std::pair<std::size_t, std::size_t>{1, 1}));
  EXPECT_EQ(pts[2], (std::pair<std::size_t, std::size_t>{3, 3}));
}

TEST(Histogram, EmptyHistogramGuards) {
  Histogram h;
  EXPECT_THROW(h.min_value(), std::logic_error);
  EXPECT_THROW(h.max_value(), std::logic_error);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_TRUE(h.log_binned(2.0).empty());
}

TEST(Histogram, LogBinningPreservesMass) {
  Histogram h;
  for (std::size_t v = 30; v <= 300; v += 7) h.add(v, v % 5 + 1);
  std::size_t mass = 0;
  for (const auto& [lower, count] : h.log_binned(1.3)) mass += count;
  EXPECT_EQ(mass, h.total());
}

TEST(Histogram, LogBinningBoundsGrowGeometrically) {
  Histogram h;
  h.add(1);
  h.add(1000);
  const auto bins = h.log_binned(2.0);
  ASSERT_GE(bins.size(), 2u);
  for (std::size_t i = 1; i < bins.size(); ++i) {
    EXPECT_GE(bins[i].first, bins[i - 1].first * 2 - 1);
  }
}

TEST(Histogram, LogBinningRejectsBadFactor) {
  Histogram h;
  h.add(1);
  EXPECT_THROW(h.log_binned(1.0), std::logic_error);
}

TEST(Histogram, PrintLoglogProducesBars) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.add(30 + i % 20);
  std::ostringstream os;
  h.print_loglog(os, "degree distribution");
  const auto out = os.str();
  EXPECT_NE(out.find("degree distribution"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("n=100"), std::string::npos);
}

}  // namespace
}  // namespace pss::stats
