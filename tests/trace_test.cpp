// The causal-tracing and runtime-profiling contract, in four parts:
//   1. Flight recorder — TraceRecorder ring semantics (overwrite-oldest,
//      drop accounting), byte-exact PSSTRACE1 golden dump round-trip.
//   2. Profiler — the log2 bucket algebra's edge units and the
//      percentile-as-upper-edge rule, pinned value by value.
//   3. Non-perturbation — a run with the tracing seam attached (disarmed
//      OR armed) ends digest-identical to an untraced run, on every
//      engine that carries the seam: CycleEngine, ParallelCycleEngine
//      (deterministic, 2 and 4 lanes), EventEngine, ParallelEventEngine,
//      and the ServiceNode/LoopbackDriver wire stack.
//   4. Pull endpoint — serves the latest installed snapshot over real TCP;
//      the threaded suite runs under TSan in CI.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "pss/obs/profiler.hpp"
#include "pss/obs/pull_endpoint.hpp"
#include "pss/obs/schemas.hpp"
#include "pss/obs/sinks.hpp"
#include "pss/obs/trace.hpp"
#include "pss/scenarios/digest.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/sim/event_engine.hpp"
#include "pss/sim/network.hpp"
#include "pss/sim/parallel_cycle_engine.hpp"
#include "pss/sim/parallel_event_engine.hpp"
#include "pss/sim/trace_probe.hpp"
#include "pss/transport/loopback_driver.hpp"
#include "pss/transport/loopback_transport.hpp"

namespace pss {
namespace {

using sim::TracePhase;
using sim::TraceSpan;

// ---- shared fixtures --------------------------------------------------------

sim::Network make_net(std::size_t n, std::uint64_t seed = 42) {
  return sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                     ProtocolOptions{8, false}, n, seed);
}

/// Recorder + profiler behind a tee — the attachment every traced run
/// uses (bench/scale_trace.cpp, examples/udp_gossip_daemon.cpp).
struct Kit {
  obs::TraceRecorder recorder{1 << 14};
  obs::Profiler profiler;
  obs::TraceTee tee;
  explicit Kit(bool armed) {
    tee.add(recorder);
    tee.add(profiler);
    recorder.set_armed(armed);
    profiler.set_armed(armed);
  }
};

enum class Mode { kNone, kDisarmed, kArmed };

struct Outcome {
  std::uint64_t digest = 0;
  std::uint64_t spans = 0;
};

/// Runs `drive(net, probe-or-null)` on a freshly seeded world.
template <typename Drive>
Outcome run_mode(std::size_t n, Mode mode, Drive drive) {
  sim::Network net = make_net(n);
  Kit kit(mode == Mode::kArmed);
  drive(net, mode == Mode::kNone ? nullptr : &kit.tee);
  return {scenarios::state_digest(net), kit.recorder.total_recorded()};
}

/// The non-perturbation triple: untraced == disarmed == armed, and the
/// armed run actually recorded spans (otherwise the check is vacuous).
template <typename Drive>
void expect_unperturbed(std::size_t n, Drive drive) {
  const Outcome base = run_mode(n, Mode::kNone, drive);
  const Outcome disarmed = run_mode(n, Mode::kDisarmed, drive);
  const Outcome armed = run_mode(n, Mode::kArmed, drive);
  EXPECT_EQ(base.digest, disarmed.digest);
  EXPECT_EQ(base.digest, armed.digest);
  EXPECT_EQ(disarmed.spans, 0u);
  EXPECT_GT(armed.spans, 0u);
}

// ---- 1. flight recorder -----------------------------------------------------

TEST(TraceRecorderTest, RingOverwritesOldestAndCountsDrops) {
  obs::TraceRecorder rec(3);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    rec.record({TracePhase::kSelect, static_cast<NodeId>(i), kInvalidNode, i,
                i, 100, 100 + i});
  }
  EXPECT_EQ(rec.capacity(), 3u);
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.total_recorded(), 5u);
  EXPECT_EQ(rec.dropped(), 2u);
  // Oldest-first: events 3, 4, 5 survive.
  EXPECT_EQ(rec.event(0).exchange_id, 3u);
  EXPECT_EQ(rec.event(1).exchange_id, 4u);
  EXPECT_EQ(rec.event(2).exchange_id, 5u);
  EXPECT_EQ(rec.event(2).duration_ns, 5u);

  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 5u);
}

TEST(TraceRecorderTest, DisarmedRecorderIgnoresSpans) {
  obs::TraceRecorder rec(4);
  rec.set_armed(false);
  rec.record({TracePhase::kSelect, 1, 2, 3, 4, 5, 6});
  EXPECT_EQ(rec.total_recorded(), 0u);
}

TEST(TraceRecorderTest, EncodeEventGoldenBytes) {
  // The packed 32-byte little-endian layout is a wire format: these bytes
  // may only change together with a pss.obs.trace version bump.
  obs::TraceEvent e;
  e.wall_ns = 0x0102030405060708ULL;
  e.exchange_id = 0x1112131415161718ULL;
  e.node = 0x21222324u;
  e.peer = 0x31323334u;
  e.duration_ns = 0x41424344u;
  e.tick = 0x1234u;
  e.kind = 1;  // merge_apply
  std::vector<std::byte> bytes;
  obs::TraceRecorder::encode_event(e, bytes);
  const unsigned char expected[obs::kTraceEventStride] = {
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // wall_ns
      0x18, 0x17, 0x16, 0x15, 0x14, 0x13, 0x12, 0x11,  // exchange_id
      0x24, 0x23, 0x22, 0x21,                          // node
      0x34, 0x33, 0x32, 0x31,                          // peer
      0x44, 0x43, 0x42, 0x41,                          // duration_ns
      0x34, 0x12,                                      // tick
      0x01, 0x00,                                      // kind, reserved
  };
  ASSERT_EQ(bytes.size(), obs::kTraceEventStride);
  for (std::size_t i = 0; i < obs::kTraceEventStride; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(bytes[i]), expected[i]) << "byte " << i;
  }
}

TEST(TraceRecorderTest, SpanFoldsIntoEventFields) {
  obs::TraceRecorder rec(4);
  // tick truncates to its low 16 bits; duration saturates at u32 max.
  rec.record({TracePhase::kTimeout, 7, 9, 42, 0xABCD1234ULL, 1000,
              1000 + 0x1'FFFF'FFFFULL});
  const obs::TraceEvent& e = rec.event(0);
  EXPECT_EQ(e.wall_ns, 1000u);
  EXPECT_EQ(e.node, 7u);
  EXPECT_EQ(e.peer, 9u);
  EXPECT_EQ(e.exchange_id, 42u);
  EXPECT_EQ(e.tick, 0x1234u);
  EXPECT_EQ(e.kind, static_cast<std::uint8_t>(TracePhase::kTimeout));
  EXPECT_EQ(e.duration_ns, 0xFFFFFFFFu);  // saturated
}

TEST(TraceRecorderTest, DumpGoldenRoundTrip) {
  obs::TraceRecorder rec(4);
  rec.record({TracePhase::kSelect, 1, 2, 100, 5, 10'000, 10'500});
  rec.record({TracePhase::kRequestSent, 1, 2, 100, 5, 10'600, 12'000});

  obs::RunMetadata meta;
  meta.bench = "trace_test";
  meta.engine = "unit";
  meta.protocol = "(rand,head,pushpull)";
  meta.protocol_id = 7;
  meta.n = 4;
  meta.view_size = 8;
  meta.cycles = 1;
  meta.seed = 42;
  meta.git = "golden";  // pinned: the header must not depend on the build

  const std::string path = testing::TempDir() + "/trace_golden.bin";
  ASSERT_TRUE(rec.dump(path, meta));

  std::ifstream in(path, std::ios::binary);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());

  // Reconstruct the expected document byte for byte.
  const std::string header = obs::make_jsonl_header(obs::schemas::kTrace, meta);
  std::vector<std::byte> expected;
  const char magic[] = "PSSTRACE1";
  for (int i = 0; i < 9; ++i) expected.push_back(std::byte(magic[i]));
  expected.push_back(std::byte{0});
  auto u16 = [&](std::uint16_t v) {
    expected.push_back(std::byte(v & 0xff));
    expected.push_back(std::byte(v >> 8));
  };
  auto u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) expected.push_back(std::byte((v >> (8 * i)) & 0xff));
  };
  auto u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) expected.push_back(std::byte((v >> (8 * i)) & 0xff));
  };
  u16(32);
  u32(static_cast<std::uint32_t>(header.size()));
  u64(4);  // capacity
  u64(2);  // total_recorded
  u64(2);  // event_count
  for (char ch : header) expected.push_back(std::byte(ch));
  obs::TraceRecorder::encode_event(rec.event(0), expected);
  obs::TraceRecorder::encode_event(rec.event(1), expected);

  ASSERT_EQ(raw.size(), expected.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    ASSERT_EQ(static_cast<unsigned char>(raw[i]),
              static_cast<unsigned char>(expected[i]))
        << "byte " << i;
  }
  // And the embedded header is the versioned schema, not a guess.
  const std::string text(raw.begin(), raw.end());
  EXPECT_NE(text.find("\"name\":\"pss.obs.trace\",\"version\":1"),
            std::string::npos);
  EXPECT_NE(text.find("\"git\":\"golden\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceRecorderTest, TeeForwardsOnlyToArmedChildren) {
  obs::TraceRecorder a(4);
  obs::TraceRecorder b(4);
  obs::TraceTee tee;
  tee.add(a);
  tee.add(b);
  b.set_armed(false);
  EXPECT_TRUE(tee.armed());
  tee.record({TracePhase::kSelect, 1, 2, 3, 4, 5, 6});
  EXPECT_EQ(a.total_recorded(), 1u);
  EXPECT_EQ(b.total_recorded(), 0u);
  a.set_armed(false);
  EXPECT_FALSE(tee.armed());
}

// ---- 2. profiler ------------------------------------------------------------

TEST(ProfilerTest, HistogramBucketEdgeUnits) {
  using P = obs::Profiler;
  // bucket 0 is exactly 0 ns; bucket b >= 1 is [2^(b-1), 2^b - 1].
  EXPECT_EQ(P::bucket_of(0), 0u);
  EXPECT_EQ(P::bucket_of(1), 1u);
  EXPECT_EQ(P::bucket_of(2), 2u);
  EXPECT_EQ(P::bucket_of(3), 2u);
  EXPECT_EQ(P::bucket_of(4), 3u);
  EXPECT_EQ(P::bucket_of(1023), 10u);
  EXPECT_EQ(P::bucket_of(1024), 11u);
  EXPECT_EQ(P::bucket_of(~0ULL), 64u);

  EXPECT_EQ(P::bucket_lo(0), 0u);
  EXPECT_EQ(P::bucket_hi(0), 0u);
  EXPECT_EQ(P::bucket_lo(1), 1u);
  EXPECT_EQ(P::bucket_hi(1), 1u);
  EXPECT_EQ(P::bucket_lo(2), 2u);
  EXPECT_EQ(P::bucket_hi(2), 3u);
  EXPECT_EQ(P::bucket_lo(10), 512u);
  EXPECT_EQ(P::bucket_hi(10), 1023u);
  EXPECT_EQ(P::bucket_lo(64), 1ULL << 63);
  EXPECT_EQ(P::bucket_hi(64), ~0ULL);
  // Every bucket's own edges map back into it.
  for (std::size_t b = 0; b < P::kBuckets; ++b) {
    EXPECT_EQ(P::bucket_of(P::bucket_lo(b)), b);
    EXPECT_EQ(P::bucket_of(P::bucket_hi(b)), b);
  }
}

TEST(ProfilerTest, RecordsPerPhaseAndAppliesPercentileRule) {
  obs::Profiler prof;
  auto span = [](std::uint64_t d) {
    return TraceSpan{TracePhase::kMergeApply, 1, 2, 3, 4, 1000, 1000 + d};
  };
  for (std::uint64_t d : {0ULL, 1ULL, 1ULL, 2ULL, 1000ULL}) {
    prof.record(span(d));
  }
  EXPECT_EQ(prof.count(TracePhase::kMergeApply), 5u);
  EXPECT_EQ(prof.sum_ns(TracePhase::kMergeApply), 1004u);
  EXPECT_EQ(prof.count(TracePhase::kSelect), 0u);
  EXPECT_EQ(prof.bucket_count(TracePhase::kMergeApply, 0), 1u);
  EXPECT_EQ(prof.bucket_count(TracePhase::kMergeApply, 1), 2u);
  EXPECT_EQ(prof.bucket_count(TracePhase::kMergeApply, 2), 1u);
  EXPECT_EQ(prof.bucket_count(TracePhase::kMergeApply, 10), 1u);
  // Percentile = upper edge of the first bucket whose cumulative count
  // reaches ceil(q * total): rank 3 of 5 lands in bucket 1 -> 1 ns.
  EXPECT_EQ(prof.percentile_ns(TracePhase::kMergeApply, 0.5), 1u);
  EXPECT_EQ(prof.percentile_ns(TracePhase::kMergeApply, 0.8), 3u);
  EXPECT_EQ(prof.percentile_ns(TracePhase::kMergeApply, 1.0), 1023u);
  EXPECT_EQ(prof.percentile_ns(TracePhase::kMergeApply, 0.0), 0u);
  EXPECT_EQ(prof.percentile_ns(TracePhase::kSelect, 0.5), 0u);
}

/// Captures begin/row calls so the export contract is checked against the
/// schema object itself, not a serialized form.
struct CaptureSink final : obs::MetricSink {
  const obs::MetricSchema* schema = nullptr;
  std::vector<std::vector<obs::MetricValue>> rows;
  void begin(const obs::MetricSchema& s, const obs::RunMetadata&) override {
    schema = &s;
  }
  void row(std::span<const obs::MetricValue> values) override {
    rows.emplace_back(values.begin(), values.end());
  }
  void finish() override {}
};

TEST(ProfilerTest, ExportsOneRowPerNonEmptyBucket) {
  obs::Profiler prof;
  prof.record({TracePhase::kSelect, 1, 2, 3, 4, 0, 5});        // bucket 3
  prof.record({TracePhase::kSelect, 1, 2, 3, 4, 0, 5});        // bucket 3
  prof.record({TracePhase::kReplyReceived, 1, 2, 3, 4, 0, 1});  // bucket 1
  CaptureSink sink;
  prof.export_rows(sink, obs::RunMetadata{});
  ASSERT_NE(sink.schema, nullptr);
  EXPECT_EQ(std::string(sink.schema->name), "pss.obs.profile");
  EXPECT_EQ(sink.schema->version, 1u);
  ASSERT_EQ(sink.rows.size(), 2u);  // one per non-empty (phase, bucket)
  for (const auto& row : sink.rows) {
    ASSERT_EQ(row.size(), 6u);  // phase_id, phase, bucket, lo, hi, count
  }
  // Rows come out in phase order: select (id 0) before reply_received (3).
  EXPECT_EQ(sink.rows[0][0].u, 0u);
  EXPECT_EQ(std::string(sink.rows[0][1].s), "select");
  EXPECT_EQ(sink.rows[0][2].u, 3u);
  EXPECT_EQ(sink.rows[0][5].u, 2u);
  EXPECT_EQ(std::string(sink.rows[1][1].s), "reply_received");
}

TEST(ProfilerTest, PrometheusRenderIsCumulative) {
  obs::Profiler prof;
  prof.record({TracePhase::kSelect, 1, 2, 3, 4, 0, 2});  // bucket 2, hi 3
  prof.record({TracePhase::kSelect, 1, 2, 3, 4, 0, 5});  // bucket 3, hi 7
  std::string text;
  prof.render_prometheus(text);
  EXPECT_NE(text.find("# TYPE pss_phase_duration_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("pss_phase_duration_ns_bucket{phase=\"select\",le=\"3\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("pss_phase_duration_ns_bucket{phase=\"select\",le=\"7\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("pss_phase_duration_ns_bucket{phase=\"select\",le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("pss_phase_duration_ns_sum{phase=\"select\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("pss_phase_duration_ns_count{phase=\"select\"} 2"),
            std::string::npos);
  // Phases that recorded nothing stay out of the exposition.
  EXPECT_EQ(text.find("merge_apply"), std::string::npos);
}

// ---- 3. non-perturbation differentials --------------------------------------

TEST(TraceDifferentialTest, CycleEngineDigestUnperturbed) {
  expect_unperturbed(300, [](sim::Network& net, sim::TraceProbe* probe) {
    sim::CycleEngine engine(net);
    if (probe != nullptr) engine.attach_trace(*probe);
    engine.run(10);
  });
}

TEST(TraceDifferentialTest, EventEngineDigestUnperturbed) {
  expect_unperturbed(300, [](sim::Network& net, sim::TraceProbe* probe) {
    sim::EventEngine engine(net, sim::EventEngineConfig{});
    if (probe != nullptr) engine.attach_trace(*probe);
    engine.run_cycles(10);
  });
}

TEST(TraceDifferentialTest, LoopbackServiceDigestUnperturbed) {
  expect_unperturbed(200, [](sim::Network& net, sim::TraceProbe* probe) {
    transport::LoopbackTransport bus(transport::LoopbackConfig{}, net.rng());
    transport::LoopbackDriver driver(net, bus);
    if (probe != nullptr) driver.attach_trace(*probe);
    driver.run_cycles(10);
  });
}

TEST(TraceDifferentialTest, LoopbackAttachAfterConstructionReachesNewNodes) {
  // attach_trace before the driver has scheduled later-added nodes: the
  // stored probe must be forwarded to nodes created afterwards.
  sim::Network net = make_net(50);
  transport::LoopbackTransport bus(transport::LoopbackConfig{}, net.rng());
  transport::LoopbackDriver driver(net, bus);
  Kit kit(/*armed=*/true);
  driver.attach_trace(kit.tee);
  net.add_nodes(10);
  sim::bootstrap::init_random(net);
  driver.run_cycles(5);
  EXPECT_GT(kit.recorder.total_recorded(), 0u);
}

TEST(TraceProbeParallel, DeterministicCycleEngineUnperturbed) {
  for (const unsigned threads : {2u, 4u}) {
    expect_unperturbed(300, [threads](sim::Network& net,
                                      sim::TraceProbe* probe) {
      sim::ParallelCycleEngine engine(
          net, {threads, sim::ParallelPolicy::kDeterministic});
      if (probe != nullptr) engine.attach_trace(*probe);
      engine.run(10);
    });
  }
}

TEST(TraceProbeParallel, ParallelEventEngineUnperturbed) {
  for (const unsigned threads : {2u, 4u}) {
    expect_unperturbed(300, [threads](sim::Network& net,
                                      sim::TraceProbe* probe) {
      sim::ParallelEventEngine engine(net, sim::EventEngineConfig{}, threads);
      if (probe != nullptr) engine.attach_trace(*probe);
      engine.run_cycles(10);
    });
  }
}

TEST(TraceProbeParallel, RelaxedPolicyRecordsConcurrently) {
  // Relaxed runs are not digest-stable, so no triple here — this pins the
  // thread-safety claim instead: lanes record through the tee into the
  // spinlocked ring and the atomic histograms without racing (TSan job).
  sim::Network net = make_net(500);
  sim::ParallelCycleEngine engine(net, {4, sim::ParallelPolicy::kRelaxed});
  Kit kit(/*armed=*/true);
  engine.attach_trace(kit.tee);
  engine.run(10);
  EXPECT_GT(kit.recorder.total_recorded(), 0u);
  EXPECT_GT(kit.profiler.count(sim::TracePhase::kMergeApply), 0u);
}

// ---- 4. pull endpoint -------------------------------------------------------

std::string http_get(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
  (void)!::send(fd, request, sizeof request - 1, 0);
  std::string out;
  char buf[4096];
  ssize_t got = 0;
  while ((got = ::recv(fd, buf, sizeof buf, 0)) > 0) out.append(buf, got);
  ::close(fd);
  return out;
}

TEST(PullEndpointTest, ServesLatestSnapshot) {
  obs::PullEndpoint http(0);
  ASSERT_TRUE(http.ok());
  ASSERT_NE(http.port(), 0);  // port 0 resolved to the kernel's choice
  http.set_text("pss_test_metric 1\n");
  std::string reply = http_get(http.port());
  EXPECT_NE(reply.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(reply.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(reply.find("pss_test_metric 1"), std::string::npos);
  http.set_text("pss_test_metric 2\n");
  reply = http_get(http.port());
  EXPECT_NE(reply.find("pss_test_metric 2"), std::string::npos);
  EXPECT_EQ(reply.find("pss_test_metric 1"), std::string::npos);
  EXPECT_GE(http.requests_served(), 2u);
  http.stop();
  http.stop();  // idempotent
}

TEST(PullEndpointThreaded, ConcurrentScrapesAndUpdates) {
  obs::PullEndpoint http(0);
  ASSERT_TRUE(http.ok());
  std::atomic<int> ok_scrapes{0};
  std::vector<std::thread> scrapers;
  scrapers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        const std::string reply = http_get(http.port());
        if (reply.find("HTTP/1.0 200 OK") != std::string::npos) {
          ok_scrapes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    http.set_text("pss_counter " + std::to_string(i) + "\n");
  }
  for (std::thread& t : scrapers) t.join();
  EXPECT_EQ(ok_scrapes.load(), 60);
  http.stop();
}

}  // namespace
}  // namespace pss
