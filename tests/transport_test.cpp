// Transport-layer test pyramid:
//   TransportDifferential — a LoopbackTransport run IS an EventEngine run:
//     digest-identical state (views, stats, per-node Rng positions) under
//     cloned seeds, for zero-delay/zero-loss and for latency + loss.
//   TransportInvariants   — under the knobs EventEngine has no counterpart
//     for (reorder, duplication) plus loss and churn, the protocol
//     invariants and the wire accounting still hold.
//   ServiceNodeUnit       — driver mechanics in isolation.
//   LoopbackTransport     — backend queue semantics.
//   UdpTransport / TransportPollLoop — the socket path, incl. the threaded
//     poll-loop test TSan runs in CI.

#include "pss/transport/loopback_driver.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <unistd.h>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/scenarios/digest.hpp"
#include "pss/service/peer_sampling_service.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/event_engine.hpp"
#include "pss/transport/udp_transport.hpp"

namespace pss::transport {
namespace {

using sim::EventEngine;
using sim::EventEngineConfig;
using sim::EventEngineStats;
using sim::Network;

void expect_stats_equal(const EventEngineStats& a, const EventEngineStats& b) {
  EXPECT_EQ(a.wakeups, b.wakeups);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.messages_to_dead, b.messages_to_dead);
  EXPECT_EQ(a.replies_delivered, b.replies_delivered);
  EXPECT_EQ(a.replies_stale, b.replies_stale);
}

// Runs the same seeded workload through EventEngine and through
// ServiceNodes over a LoopbackTransport, returning both digests.
struct DifferentialRun {
  std::uint64_t engine_digest = 0;
  std::uint64_t transport_digest = 0;
  EventEngineStats engine_stats;
  EventEngineStats transport_stats;
};

DifferentialRun run_differential(const ProtocolSpec& spec,
                                 const ProtocolOptions& options, std::size_t n,
                                 std::uint64_t seed, std::size_t cycles,
                                 const EventEngineConfig& config) {
  DifferentialRun result;
  {
    Network net = sim::bootstrap::make_random(spec, options, n, seed);
    EventEngine engine(net, config);
    engine.run_cycles(cycles);
    result.engine_digest = scenarios::state_digest(net);
    result.engine_stats = engine.stats();
  }
  {
    Network net = sim::bootstrap::make_random(spec, options, n, seed);
    LoopbackConfig bus_config;
    bus_config.min_delay = config.min_latency;
    bus_config.max_delay = config.max_latency;
    bus_config.loss_probability = config.drop_probability;
    LoopbackTransport bus(bus_config, net.rng());
    LoopbackDriver driver(
        net, bus, LoopbackDriverConfig{config.period, config.reply_timeout});
    driver.run_cycles(cycles);
    result.transport_digest = scenarios::state_digest(net);
    result.transport_stats = driver.engine_stats();
  }
  return result;
}

TEST(TransportDifferential, ZeroDelayZeroLossAllEvaluatedProtocols) {
  ProtocolOptions options;
  options.view_size = 8;
  EventEngineConfig config;
  config.min_latency = 0.0;
  config.max_latency = 0.0;
  config.drop_probability = 0.0;
  std::uint64_t seed = 0xD1FF0001;
  for (const ProtocolSpec& spec : ProtocolSpec::evaluated()) {
    const DifferentialRun r =
        run_differential(spec, options, 64, seed++, 20, config);
    EXPECT_EQ(r.engine_digest, r.transport_digest) << spec.name();
    expect_stats_equal(r.engine_stats, r.transport_stats);
  }
}

TEST(TransportDifferential, LatencyAndLossStayBitIdentical) {
  // The correspondence is not limited to the degenerate config: the bus
  // mirrors the engine's master-Rng draw pattern, so latency jitter and
  // message loss replay identically too.
  ProtocolOptions options;
  options.view_size = 10;
  EventEngineConfig config;
  config.min_latency = 0.01;
  config.max_latency = 0.10;
  config.drop_probability = 0.15;
  for (const ProtocolSpec& spec :
       {ProtocolSpec::newscast(), ProtocolSpec::lpbcast()}) {
    const DifferentialRun r =
        run_differential(spec, options, 96, 0xD1FF0002, 25, config);
    EXPECT_EQ(r.engine_digest, r.transport_digest) << spec.name();
    expect_stats_equal(r.engine_stats, r.transport_stats);
  }
}

TEST(TransportDifferential, ChurnAndGrowthStayBitIdentical) {
  ProtocolOptions options;
  options.view_size = 8;
  EventEngineConfig config;
  config.min_latency = 0.0;
  config.max_latency = 0.05;
  config.drop_probability = 0.05;
  const std::uint64_t seed = 0xD1FF0003;

  std::uint64_t engine_digest, transport_digest;
  EventEngineStats engine_stats, transport_stats;
  {
    Network net = sim::bootstrap::make_random(ProtocolSpec::newscast(), options, 80, seed);
    EventEngine engine(net, config);
    engine.run_cycles(8);
    net.kill(3);
    net.kill(17);
    net.kill_random(10, net.rng());
    engine.run_cycles(8);
    net.revive(3);
    net.add_nodes(24);
    engine.run_cycles(8);
    engine_digest = scenarios::state_digest(net);
    engine_stats = engine.stats();
  }
  {
    Network net = sim::bootstrap::make_random(ProtocolSpec::newscast(), options, 80, seed);
    LoopbackConfig bus_config;
    bus_config.max_delay = config.max_latency;
    bus_config.loss_probability = config.drop_probability;
    LoopbackTransport bus(bus_config, net.rng());
    LoopbackDriver driver(net, bus);
    driver.run_cycles(8);
    net.kill(3);
    net.kill(17);
    net.kill_random(10, net.rng());
    driver.run_cycles(8);
    net.revive(3);
    net.add_nodes(24);
    driver.run_cycles(8);
    transport_digest = scenarios::state_digest(net);
    transport_stats = driver.engine_stats();
  }
  EXPECT_EQ(engine_digest, transport_digest);
  expect_stats_equal(engine_stats, transport_stats);
}

TEST(TransportDifferential, RunsAreDeterministic) {
  ProtocolOptions options;
  options.view_size = 6;
  EventEngineConfig config;
  config.max_latency = 0.1;
  config.min_latency = 0.01;
  config.drop_probability = 0.1;
  const DifferentialRun a = run_differential(ProtocolSpec::newscast(), options,
                                             50, 0xD1FF0004, 15, config);
  const DifferentialRun b = run_differential(ProtocolSpec::newscast(), options,
                                             50, 0xD1FF0004, 15, config);
  EXPECT_EQ(a.transport_digest, b.transport_digest);
  EXPECT_EQ(a.engine_digest, b.engine_digest);
}

TEST(TransportInvariants, LossReorderDuplicationKeepViewsSound) {
  ProtocolOptions options;
  options.view_size = 8;
  Network net = sim::bootstrap::make_random(ProtocolSpec::newscast(), options, 100,
                                 0x14BA0011);
  LoopbackConfig bus_config;
  bus_config.min_delay = 0.0;
  bus_config.max_delay = 0.3;
  bus_config.loss_probability = 0.2;
  bus_config.reorder_probability = 0.5;
  bus_config.reorder_jitter = 0.8;
  bus_config.duplicate_probability = 0.3;
  LoopbackTransport bus(bus_config, net.rng());
  LoopbackDriver driver(net, bus);
  driver.run_cycles(30);

  for (NodeId id = 0; id < net.size(); ++id) {
    const auto view = net.view_span(id);
    EXPECT_LE(view.size(), options.view_size);
    for (std::size_t i = 0; i < view.size(); ++i) {
      EXPECT_NE(view[i].address, id) << "self-entry at node " << id;
      if (i + 1 < view.size()) {
        EXPECT_TRUE(ByHopThenAddress{}(view[i], view[i + 1]))
            << "view not normalized at node " << id;
      }
    }
  }
  const LoopbackStats& s = bus.stats();
  EXPECT_EQ(s.frames_sent + s.frames_duplicated,
            s.frames_delivered + s.frames_dropped + bus.in_flight());
  EXPECT_EQ(driver.rejected_frames(), 0u);
  EXPECT_GT(s.frames_delivered, 0u);
}

TEST(TransportInvariants, MalformedInjectionIsCountedAndHarmless) {
  ProtocolOptions options;
  options.view_size = 6;
  Network net =
      sim::bootstrap::make_random(ProtocolSpec::newscast(), options, 40, 0x14BA0012);
  LoopbackConfig bus_config;  // zero delay/loss
  LoopbackTransport bus(bus_config, net.rng());
  LoopbackDriver driver(net, bus);
  driver.run_cycles(3);

  // Inject garbage straight onto the bus: short frames, bad magic, and a
  // truncated-but-valid prefix. The driver must reject all three at the
  // codec and keep running.
  const std::vector<std::byte> garbage(13, static_cast<std::byte>(0xAB));
  bus.send(5, std::span<const std::byte>(garbage));
  std::vector<std::byte> frame_bytes;
  WireCodec codec(options.view_size);
  std::vector<NodeDescriptor> entries = {{1, 0}, {2, 1}};
  WireFrame frame;
  frame.spec = ProtocolSpec::newscast();
  frame.from = 7;
  frame.to = 5;
  frame.entries = flat::DescSpan(entries);
  codec.encode(frame, frame_bytes);
  frame_bytes[0] = static_cast<std::byte>(0x00);  // bad magic
  bus.send(5, std::span<const std::byte>(frame_bytes));

  driver.run_cycles(5);
  EXPECT_EQ(driver.rejected_frames(), 2u);
  for (NodeId id = 0; id < net.size(); ++id) {
    EXPECT_LE(net.view_span(id).size(), options.view_size);
  }
}

TEST(ServiceNodeUnit, MisroutedAndForeignFramesAreCountedNotAbsorbed) {
  Rng bus_rng(0x5E2F0001);
  LoopbackTransport bus({}, bus_rng);
  ServiceNode node(/*self=*/9, ProtocolSpec::newscast(), ProtocolOptions{},
                   Rng(0x5E2F0002), bus);
  const std::vector<NodeId> contacts = {1, 2, 3};
  node.init(contacts);
  const auto before = node.view();
  const std::size_t before_size = before.size();

  ParsedFrame frame;
  frame.type = FrameType::kRequest;
  frame.spec = ProtocolSpec::newscast();
  frame.from = 1;
  frame.to = 8;  // not us
  std::vector<NodeDescriptor> entries = {{4, 0}};
  frame.entries = flat::DescSpan(entries);
  node.on_frame(frame, 0.0);
  EXPECT_EQ(node.stats().misaddressed, 1u);

  frame.to = 9;
  frame.spec = ProtocolSpec::lpbcast();  // foreign protocol
  node.on_frame(frame, 0.0);
  EXPECT_EQ(node.stats().protocol_mismatches, 1u);
  EXPECT_EQ(node.view().size(), before_size);
  EXPECT_EQ(node.node_stats().received, 0u);
}

TEST(ServiceNodeUnit, PullTimeoutSurfacesAsContactFailure) {
  Rng bus_rng(0x5E2F0003);
  LoopbackConfig lossy;
  lossy.loss_probability = 1.0;  // every request vanishes
  LoopbackTransport bus(lossy, bus_rng);
  ServiceNode node(/*self=*/0, ProtocolSpec::newscast(), ProtocolOptions{},
                   Rng(0x5E2F0004), bus);
  const std::vector<NodeId> contacts = {1, 2, 3, 4};
  node.init(contacts);

  node.on_tick(0.0);  // opens a pull exchange; request is dropped
  EXPECT_TRUE(node.pending().active);
  EXPECT_EQ(node.node_stats().initiated, 1u);
  node.on_tick(1.0);  // deadline 0.5 < 1.0: expired
  EXPECT_EQ(node.node_stats().contact_failures, 1u);
}

TEST(ServiceNodeUnit, PeerSamplingServiceRunsOverTransportView) {
  // The service-layer API (init / getPeer) operates on a view the wire
  // stack maintains — the middleware deployment shape of the examples.
  Rng bus_rng(0x5E2F0005);
  LoopbackTransport bus({}, bus_rng);
  ServiceNode a(/*self=*/1, ProtocolSpec::newscast(), ProtocolOptions{},
                Rng(0x5E2F0006), bus);
  ServiceNode b(/*self=*/2, ProtocolSpec::newscast(), ProtocolOptions{},
                Rng(0x5E2F0007), bus);

  PeerSamplingService service(a.gossip_node(), Rng(0x5E2F0008));
  const std::vector<NodeId> contacts = {2};
  service.init(contacts);
  const std::vector<NodeId> b_contacts = {1};
  b.init(b_contacts);

  // Drive a few exchanges by hand: a ticks, frames route by header.
  for (int cycle = 1; cycle <= 4; ++cycle) {
    const double now = static_cast<double>(cycle);
    bus.set_now(now);
    a.on_tick(now);
    b.on_tick(now);
    for (int pass = 0; pass < 2; ++pass) {
      bus.poll([&](NodeId to, std::span<const std::byte> bytes) {
        (to == 1 ? a : b).on_datagram(bytes, now);
      });
    }
  }
  EXPECT_GT(a.stats().replies_delivered + b.stats().replies_delivered, 0u);
  const NodeId peer = service.get_peer();
  EXPECT_EQ(peer, 2u);  // the only other member
}

TEST(LoopbackTransport, DeliversInAtSeqOrder) {
  Rng rng(0x10BA0001);
  LoopbackConfig config;
  LoopbackTransport bus(config, rng);
  const std::vector<std::byte> m1(4, static_cast<std::byte>(1));
  const std::vector<std::byte> m2(4, static_cast<std::byte>(2));
  bus.set_now(0.0);
  bus.send(1, std::span<const std::byte>(m1));
  bus.send(2, std::span<const std::byte>(m2));
  ASSERT_TRUE(bus.next_event().has_value());
  EXPECT_EQ(bus.next_event()->first, 0.0);

  std::vector<NodeId> order;
  bus.poll([&](NodeId to, std::span<const std::byte> bytes) {
    order.push_back(to);
    EXPECT_EQ(bytes.size(), 4u);
  });
  ASSERT_EQ(order.size(), 2u);  // same time: seq breaks the tie, FIFO
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(bus.in_flight(), 0u);
}

TEST(LoopbackTransport, DelayedFramesWaitForTheirDueTime) {
  Rng rng(0x10BA0002);
  LoopbackConfig config;
  config.min_delay = 1.0;
  config.max_delay = 1.0;
  LoopbackTransport bus(config, rng);
  const std::vector<std::byte> m(4, static_cast<std::byte>(7));
  bus.send(3, std::span<const std::byte>(m));
  std::size_t delivered = bus.poll([](NodeId, std::span<const std::byte>) {});
  EXPECT_EQ(delivered, 0u);
  bus.set_now(1.0);
  delivered = bus.poll([](NodeId, std::span<const std::byte>) {});
  EXPECT_EQ(delivered, 1u);
}

std::uint16_t test_port_base(std::uint16_t lane) {
  // Distinct per-process bases keep parallel ctest shards off each other's
  // ports; the lane spreads suites inside one process.
  return static_cast<std::uint16_t>(
      20000 + (static_cast<std::uint32_t>(::getpid()) % 400) * 100 + lane * 10);
}

TEST(UdpTransport, TwoNodesGossipOverLocalhost) {
  const std::uint16_t base = test_port_base(0);
  UdpAddressBook book = UdpAddressBook::local_range(base, 2);
  WireCodec codec(ProtocolOptions{}.view_size);
  UdpTransport t0(book, 0, codec.max_frame_bytes());
  UdpTransport t1(book, 1, codec.max_frame_bytes());

  ServiceNode n0(/*self=*/0, ProtocolSpec::newscast(), ProtocolOptions{},
                 Rng(0xBDB00001), t0);
  ServiceNode n1(/*self=*/1, ProtocolSpec::newscast(), ProtocolOptions{},
                 Rng(0xBDB00002), t1);
  const std::vector<NodeId> c0 = {1};
  const std::vector<NodeId> c1 = {0};
  n0.init(c0);
  n1.init(c1);

  for (int cycle = 1; cycle <= 10; ++cycle) {
    const double now = static_cast<double>(cycle);
    n0.on_tick(now);
    n1.on_tick(now);
    // Localhost delivery is near-instant but not synchronous: a short
    // bounded drain loop absorbs the scheduling wiggle.
    for (int pass = 0; pass < 50; ++pass) {
      std::size_t moved = 0;
      moved += t0.poll([&](NodeId, std::span<const std::byte> b) {
        n0.on_datagram(b, now);
      });
      moved += t1.poll([&](NodeId, std::span<const std::byte> b) {
        n1.on_datagram(b, now);
      });
      if (moved == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
  EXPECT_GT(n0.node_stats().received + n1.node_stats().received, 0u);
  EXPECT_GT(n0.stats().replies_delivered + n1.stats().replies_delivered, 0u);
  EXPECT_EQ(n0.stats().frames_rejected, 0u);
  EXPECT_EQ(n1.stats().frames_rejected, 0u);
}

TEST(UdpTransport, OversizedDatagramIsDropped) {
  const std::uint16_t base = test_port_base(1);
  UdpAddressBook book = UdpAddressBook::local_range(base, 2);
  WireCodec codec(4);
  UdpTransport t0(book, 0, codec.max_frame_bytes());
  UdpTransport t1(book, 1, codec.max_frame_bytes());

  const std::vector<std::byte> huge(codec.max_frame_bytes() + 64,
                                    static_cast<std::byte>(0x5A));
  ASSERT_TRUE(t0.send(1, std::span<const std::byte>(huge)));
  std::size_t delivered = 0;
  for (int pass = 0; pass < 200 && t1.stats().datagrams_received == 0;
       ++pass) {
    delivered += t1.poll([](NodeId, std::span<const std::byte>) {});
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(t1.stats().oversized_dropped, 1u);
}

TEST(TransportPollLoopThreaded, ConcurrentTickAndPollLoops) {
  // Two single-threaded poll loops in separate threads, sharing nothing
  // but the kernel's sockets — the deployment shape of the examples
  // daemon. TSan runs this in CI to certify the loop structure.
  const std::uint16_t base = test_port_base(2);
  UdpAddressBook book = UdpAddressBook::local_range(base, 2);
  WireCodec codec(ProtocolOptions{}.view_size);
  std::atomic<std::uint64_t> peer_received{0};

  std::thread peer([&] {
    UdpTransport transport(book, 1, codec.max_frame_bytes());
    ServiceNode node(/*self=*/1, ProtocolSpec::newscast(), ProtocolOptions{},
                     Rng(0x7EAD0001), transport);
    const std::vector<NodeId> contacts = {0};
    node.init(contacts);
    for (int cycle = 1; cycle <= 40; ++cycle) {
      node.on_tick(static_cast<double>(cycle));
      for (int pass = 0; pass < 5; ++pass) {
        transport.poll([&](NodeId, std::span<const std::byte> b) {
          node.on_datagram(b, static_cast<double>(cycle));
        });
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    peer_received.store(node.node_stats().received,
                        std::memory_order_relaxed);
  });

  UdpTransport transport(book, 0, codec.max_frame_bytes());
  ServiceNode node(/*self=*/0, ProtocolSpec::newscast(), ProtocolOptions{},
                   Rng(0x7EAD0002), transport);
  const std::vector<NodeId> contacts = {1};
  node.init(contacts);
  for (int cycle = 1; cycle <= 40; ++cycle) {
    node.on_tick(static_cast<double>(cycle));
    for (int pass = 0; pass < 5; ++pass) {
      transport.poll([&](NodeId, std::span<const std::byte> b) {
        node.on_datagram(b, static_cast<double>(cycle));
      });
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  peer.join();
  EXPECT_GT(node.node_stats().received + peer_received.load(), 0u);
  EXPECT_EQ(node.stats().frames_rejected, 0u);
}

}  // namespace
}  // namespace pss::transport
