// Algebraic property tests of the view algebra under randomized inputs.
// These are the invariants the protocol's correctness silently leans on:
// merge is commutative, associative and idempotent (a join semilattice on
// (address -> min hop) maps), aging distributes over merge, and every
// selection policy returns a correctly-sized sub-view.
#include <gtest/gtest.h>

#include "pss/common/rng.hpp"
#include "pss/membership/view.hpp"

namespace pss {
namespace {

View random_view(Rng& rng, std::size_t max_size, NodeId address_space = 40,
                 HopCount max_hop = 12) {
  std::vector<NodeDescriptor> entries;
  const auto size = static_cast<std::size_t>(rng.below(max_size + 1));
  for (std::size_t i = 0; i < size; ++i) {
    entries.push_back({static_cast<NodeId>(rng.below(address_space)),
                       static_cast<HopCount>(rng.below(max_hop))});
  }
  return View(std::move(entries));
}

TEST(ViewAlgebra, MergeCommutative) {
  Rng rng(1);
  for (int trial = 0; trial < 300; ++trial) {
    const View a = random_view(rng, 20);
    const View b = random_view(rng, 20);
    ASSERT_EQ(View::merge(a, b), View::merge(b, a)) << "trial " << trial;
  }
}

TEST(ViewAlgebra, MergeAssociative) {
  Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    const View a = random_view(rng, 15);
    const View b = random_view(rng, 15);
    const View c = random_view(rng, 15);
    ASSERT_EQ(View::merge(a, View::merge(b, c)), View::merge(View::merge(a, b), c))
        << "trial " << trial;
  }
}

TEST(ViewAlgebra, MergeIdempotent) {
  Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    const View a = random_view(rng, 20);
    ASSERT_EQ(View::merge(a, a), a) << "trial " << trial;
  }
}

TEST(ViewAlgebra, MergeAbsorbsSubsets) {
  // merge(a, select(a)) == a for every selection policy: selections are
  // sub-views, so merging them back is a no-op.
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const View a = random_view(rng, 20);
    ASSERT_EQ(View::merge(a, a.select_head(5)), a);
    ASSERT_EQ(View::merge(a, a.select_tail(5)), a);
    Rng pick_rng(trial);
    ASSERT_EQ(View::merge(a, a.select_rand(5, pick_rng)), a);
  }
}

TEST(ViewAlgebra, AgingDistributesOverMerge) {
  Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    View a = random_view(rng, 20);
    View b = random_view(rng, 20);
    View merged = View::merge(a, b);
    merged.increase_hop_count();
    a.increase_hop_count();
    b.increase_hop_count();
    ASSERT_EQ(merged, View::merge(a, b)) << "trial " << trial;
  }
}

TEST(ViewAlgebra, MergeTakesMinimumHopPerAddress) {
  Rng rng(6);
  for (int trial = 0; trial < 300; ++trial) {
    const View a = random_view(rng, 20);
    const View b = random_view(rng, 20);
    const View m = View::merge(a, b);
    for (const auto& d : m.entries()) {
      HopCount expected = d.hop_count + 1;  // sentinel above any real value
      if (a.contains(d.address)) expected = a.hop_count_of(d.address);
      if (b.contains(d.address)) {
        expected = std::min(expected, b.hop_count_of(d.address));
      }
      ASSERT_EQ(d.hop_count, expected);
    }
    // And no address is lost.
    for (const auto& d : a.entries()) ASSERT_TRUE(m.contains(d.address));
    for (const auto& d : b.entries()) ASSERT_TRUE(m.contains(d.address));
  }
}

TEST(ViewAlgebra, SelectionsAreSubViewsOfRightSize) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const View a = random_view(rng, 25);
    for (std::size_t c : {0ul, 1ul, 5ul, 25ul, 100ul}) {
      const std::size_t expect = std::min(c, a.size());
      Rng r1(trial), r2(trial + 1), r3(trial + 2), r4(trial + 3);
      for (const View& sel :
           {a.select_head(c), a.select_tail(c), a.select_rand(c, r1),
            a.select_head_unbiased(c, r2), a.select_tail_unbiased(c, r3)}) {
        ASSERT_EQ(sel.size(), expect);
        ASSERT_NO_THROW(sel.validate());
        for (const auto& d : sel.entries()) {
          ASSERT_TRUE(a.contains(d.address));
          ASSERT_EQ(a.hop_count_of(d.address), d.hop_count);
        }
      }
    }
  }
}

TEST(ViewAlgebra, HeadSelectionDominatesByHopCount) {
  // Every entry kept by head selection is no older than every dropped one
  // (and symmetrically for tail).
  Rng rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    const View a = random_view(rng, 25);
    if (a.size() < 6) continue;
    Rng sel_rng(trial);
    const View head = a.select_head_unbiased(5, sel_rng);
    const View tail = a.select_tail_unbiased(5, sel_rng);
    HopCount max_kept_head = 0, min_kept_tail = ~HopCount{0};
    for (const auto& d : head.entries())
      max_kept_head = std::max(max_kept_head, d.hop_count);
    for (const auto& d : tail.entries())
      min_kept_tail = std::min(min_kept_tail, d.hop_count);
    for (const auto& d : a.entries()) {
      if (!head.contains(d.address)) {
        ASSERT_GE(d.hop_count, max_kept_head);
      }
      if (!tail.contains(d.address)) {
        ASSERT_LE(d.hop_count, min_kept_tail);
      }
    }
  }
}

TEST(ViewAlgebra, UnbiasedSelectionKeepsStrictInteriorAlways) {
  // Entries strictly fresher than the boundary hop must always survive
  // head selection regardless of the RNG.
  View v{{0, 1}, {1, 2}, {2, 3}, {3, 3}, {4, 3}, {5, 4}};
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    const View sel = v.select_head_unbiased(3, rng);
    ASSERT_TRUE(sel.contains(0));
    ASSERT_TRUE(sel.contains(1));
    // Third slot drawn from the hop-3 class.
    std::size_t boundary = 0;
    for (NodeId id : {2u, 3u, 4u}) boundary += sel.contains(id) ? 1 : 0;
    ASSERT_EQ(boundary, 1u);
    ASSERT_FALSE(sel.contains(5));
  }
}

TEST(ViewAlgebra, UnbiasedBoundarySamplingIsUniform) {
  View v{{0, 1}, {1, 2}, {2, 2}, {3, 2}, {4, 2}};
  Rng rng(9);
  int counts[5] = {};
  constexpr int kTrials = 4000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const View sel = v.select_head_unbiased(2, rng);
    for (NodeId id = 1; id <= 4; ++id) {
      if (sel.contains(id)) ++counts[id];
    }
  }
  // Each of the four hop-2 entries fills the single boundary slot ~25%.
  for (NodeId id = 1; id <= 4; ++id) {
    EXPECT_NEAR(counts[id], kTrials / 4, kTrials / 4 * 0.15) << "id " << id;
  }
}

TEST(ViewAlgebra, PeerTailUnbiasedUniformOverOldestClass) {
  View v{{0, 1}, {1, 5}, {2, 5}, {3, 5}};
  Rng rng(10);
  int counts[4] = {};
  constexpr int kTrials = 3000;
  for (int trial = 0; trial < kTrials; ++trial) ++counts[v.peer_tail_unbiased(rng)];
  EXPECT_EQ(counts[0], 0);
  for (NodeId id = 1; id <= 3; ++id) {
    EXPECT_NEAR(counts[id], kTrials / 3, kTrials / 3 * 0.15) << "id " << id;
  }
}

TEST(ViewAlgebra, PeerHeadUnbiasedUniformOverFreshestClass) {
  View v{{0, 2}, {1, 2}, {2, 2}, {3, 9}};
  Rng rng(11);
  int counts[4] = {};
  constexpr int kTrials = 3000;
  for (int trial = 0; trial < kTrials; ++trial) ++counts[v.peer_head_unbiased(rng)];
  EXPECT_EQ(counts[3], 0);
  for (NodeId id = 0; id <= 2; ++id) {
    EXPECT_NEAR(counts[id], kTrials / 3, kTrials / 3 * 0.15) << "id " << id;
  }
}

TEST(ViewAlgebra, EraseInsertRoundTrip) {
  Rng rng(12);
  for (int trial = 0; trial < 200; ++trial) {
    View a = random_view(rng, 20);
    if (a.empty()) continue;
    const auto victim = a.at(rng.below(a.size())).address;
    const HopCount hop = a.hop_count_of(victim);
    View b = a;
    ASSERT_TRUE(b.erase(victim));
    ASSERT_FALSE(b.contains(victim));
    ASSERT_TRUE(b.insert({victim, hop}));
    ASSERT_EQ(a, b);
  }
}

}  // namespace
}  // namespace pss
