// Wire-format contract tests: exhaustive encode -> decode -> re-encode
// roundtrips across the protocol design space, and a table-driven
// malformed-frame suite asserting every corruption maps to its typed
// WireError. Frame comparison is field-by-field plus payload memcmp (the
// galera msg_equal idiom); "no reads past the span" is enforced by running
// this suite under ASan/UBSan in CI against exactly-sized heap buffers.

#include "pss/transport/wire.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/membership/flat_ops.hpp"

namespace pss::transport {
namespace {

// Random normalized payload: unique small addresses, random ages, brought
// to canonical (age, address) order by the production normalize().
std::vector<NodeDescriptor> random_entries(Rng& rng, std::size_t n) {
  std::vector<NodeDescriptor> v;
  std::vector<NodeId> addrs;
  for (NodeId a = 0; addrs.size() < n; ++a) addrs.push_back(a * 3 + 1);
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(NodeDescriptor{addrs[i],
                               static_cast<HopCount>(rng.below(50))});
  }
  flat::normalize(v);
  return v;
}

WireFrame make_frame(const std::vector<NodeDescriptor>& entries,
                     FrameType type = FrameType::kRequest,
                     ProtocolSpec spec = ProtocolSpec::newscast()) {
  WireFrame f;
  f.type = type;
  f.spec = spec;
  f.from = 7;
  f.to = 12;
  f.tick = 41;
  f.exchange_id = 0x0123456789ABCDEFull;
  f.entries = flat::DescSpan(entries);
  return f;
}

// msg_equal: every header field, then the payload record-by-record.
void expect_frames_equal(const WireFrame& sent, const ParsedFrame& got) {
  EXPECT_EQ(sent.type, got.type);
  EXPECT_EQ(sent.spec, got.spec);
  EXPECT_EQ(sent.from, got.from);
  EXPECT_EQ(sent.to, got.to);
  EXPECT_EQ(sent.tick, got.tick);
  EXPECT_EQ(sent.exchange_id, got.exchange_id);
  ASSERT_EQ(sent.entries.size(), got.entries.size());
  for (std::size_t i = 0; i < sent.entries.size(); ++i) {
    EXPECT_EQ(sent.entries[i], got.entries[i]) << "record " << i;
  }
}

// Decode from an exactly-sized heap buffer so ASan catches any read past
// the declared span end.
WireError decode_tight(WireCodec& codec, const std::vector<std::byte>& bytes,
                       ParsedFrame& out) {
  std::vector<std::byte> tight(bytes);
  tight.shrink_to_fit();
  return codec.decode(std::span<const std::byte>(tight), out);
}

TEST(WireCodec, RoundtripAllProtocolsAndSizes) {
  Rng rng(0xC0DEC001);
  for (const ProtocolSpec& spec : ProtocolSpec::all()) {
    for (std::size_t view_size :
         {std::size_t{1}, std::size_t{4}, std::size_t{30}}) {
      WireCodec codec(view_size);
      for (std::size_t n : {std::size_t{0}, std::size_t{1}, view_size,
                            view_size + 1}) {
        const auto entries = random_entries(rng, n);
        for (FrameType type : {FrameType::kRequest, FrameType::kReply}) {
          const WireFrame frame = make_frame(entries, type, spec);
          std::vector<std::byte> bytes;
          codec.encode(frame, bytes);
          ASSERT_EQ(bytes.size(), WireCodec::frame_bytes(n));

          ParsedFrame parsed;
          ASSERT_EQ(decode_tight(codec, bytes, parsed), WireError::kOk)
              << spec.name() << " n=" << n;
          expect_frames_equal(frame, parsed);

          // Re-encode of the parsed frame must be byte-identical: the
          // format has exactly one representation per logical frame.
          WireFrame again;
          again.type = parsed.type;
          again.spec = parsed.spec;
          again.from = parsed.from;
          again.to = parsed.to;
          again.tick = parsed.tick;
          again.exchange_id = parsed.exchange_id;
          again.entries = parsed.entries;
          std::vector<std::byte> bytes2;
          codec.encode(again, bytes2);
          ASSERT_EQ(bytes.size(), bytes2.size());
          EXPECT_EQ(0,
                    std::memcmp(bytes.data(), bytes2.data(), bytes.size()));
        }
      }
    }
  }
}

TEST(WireCodec, ProtocolIdBijection) {
  for (const ProtocolSpec& spec : ProtocolSpec::all()) {
    const std::uint8_t id = encode_protocol(spec);
    ASSERT_LT(id, 27);
    ProtocolSpec back;
    ASSERT_TRUE(decode_protocol(id, back));
    EXPECT_EQ(spec, back) << spec.name();
  }
  ProtocolSpec sink;
  for (int id = 27; id <= 255; ++id) {
    EXPECT_FALSE(decode_protocol(static_cast<std::uint8_t>(id), sink));
  }
}

TEST(WireCodec, HeaderLayoutIsStable) {
  // The layout documented in wire.hpp, pinned byte-for-byte: any change is
  // a wire-format break and must bump kVersion.
  Rng rng(0xC0DEC002);
  const auto entries = random_entries(rng, 2);
  WireCodec codec(4);
  std::vector<std::byte> bytes;
  codec.encode(make_frame(entries), bytes);
  ASSERT_EQ(bytes.size(), 28u + 2 * 8u);
  EXPECT_EQ(std::to_integer<int>(bytes[0]), 0x50);
  EXPECT_EQ(std::to_integer<int>(bytes[1]), 0x53);
  EXPECT_EQ(std::to_integer<int>(bytes[2]), 1);   // version
  EXPECT_EQ(std::to_integer<int>(bytes[3]), 1);   // request
  EXPECT_EQ(std::to_integer<int>(bytes[4]),
            encode_protocol(ProtocolSpec::newscast()));
  EXPECT_EQ(std::to_integer<int>(bytes[5]), 0);   // reserved
  EXPECT_EQ(std::to_integer<int>(bytes[6]), 2);   // count LE lo
  EXPECT_EQ(std::to_integer<int>(bytes[7]), 0);   // count LE hi
  EXPECT_EQ(std::to_integer<int>(bytes[8]), 7);   // from
  EXPECT_EQ(std::to_integer<int>(bytes[12]), 12); // to
  EXPECT_EQ(std::to_integer<int>(bytes[16]), 41); // tick
  EXPECT_EQ(std::to_integer<int>(bytes[20]), 0xEF); // exchange id LE lo
  // First record: address then age, both LE u32.
  EXPECT_EQ(std::to_integer<unsigned>(bytes[28]), entries[0].address & 0xFF);
  EXPECT_EQ(std::to_integer<unsigned>(bytes[32]),
            entries[0].hop_count & 0xFF);
}

// --- Malformed-frame suite -------------------------------------------------

struct Mutation {
  const char* name;
  std::size_t offset;
  std::uint8_t value;
  WireError expected;
};

class WireCodecMalformed : public ::testing::Test {
 protected:
  WireCodecMalformed() : codec_(4) {
    Rng rng(0xBADF00D5);
    entries_ = random_entries(rng, 3);
    codec_.encode(make_frame(entries_), bytes_);
  }

  WireError decode_mutated(std::size_t offset, std::uint8_t value) {
    std::vector<std::byte> mutated(bytes_);
    mutated[offset] = static_cast<std::byte>(value);
    ParsedFrame out;
    return decode_tight(codec_, mutated, out);
  }

  WireCodec codec_;
  std::vector<NodeDescriptor> entries_;
  std::vector<std::byte> bytes_;
};

TEST_F(WireCodecMalformed, EveryHeaderFieldMutationIsTyped) {
  const Mutation kTable[] = {
      {"magic byte 0", 0, 0x00, WireError::kBadMagic},
      {"magic byte 1", 1, 0xFF, WireError::kBadMagic},
      {"future version", 2, 2, WireError::kBadVersion},
      {"zero version", 2, 0, WireError::kBadVersion},
      {"type zero", 3, 0, WireError::kBadType},
      {"type out of range", 3, 3, WireError::kBadType},
      {"type garbage", 3, 0xFF, WireError::kBadType},
      {"protocol id 27", 4, 27, WireError::kBadProtocol},
      {"protocol id 255", 4, 0xFF, WireError::kBadProtocol},
      {"reserved set", 5, 1, WireError::kBadReserved},
      // count = 4 still fits the codec (max 5) but not the span.
      {"count inflated in range", 6, 4, WireError::kTruncated},
      {"count over codec capacity", 6, 6, WireError::kOversized},
      {"count huge (hi byte)", 7, 0x40, WireError::kOversized},
      {"count deflated", 6, 2, WireError::kTrailingBytes},
      {"count zeroed", 6, 0, WireError::kTrailingBytes},
  };
  for (const Mutation& m : kTable) {
    EXPECT_EQ(decode_mutated(m.offset, m.value), m.expected) << m.name;
  }
}

TEST_F(WireCodecMalformed, BadAddressing) {
  // from == to.
  {
    std::vector<std::byte> mutated(bytes_);
    mutated[8] = mutated[12];
    mutated[9] = mutated[13];
    mutated[10] = mutated[14];
    mutated[11] = mutated[15];
    ParsedFrame out;
    EXPECT_EQ(decode_tight(codec_, mutated, out), WireError::kBadAddress);
  }
  // from == kInvalidNode.
  {
    std::vector<std::byte> mutated(bytes_);
    for (std::size_t i = 8; i < 12; ++i) {
      mutated[i] = static_cast<std::byte>(0xFF);
    }
    ParsedFrame out;
    EXPECT_EQ(decode_tight(codec_, mutated, out), WireError::kBadAddress);
  }
  // to == kInvalidNode.
  {
    std::vector<std::byte> mutated(bytes_);
    for (std::size_t i = 12; i < 16; ++i) {
      mutated[i] = static_cast<std::byte>(0xFF);
    }
    ParsedFrame out;
    EXPECT_EQ(decode_tight(codec_, mutated, out), WireError::kBadAddress);
  }
}

TEST_F(WireCodecMalformed, BadPayloads) {
  const std::size_t rec0 = WireCodec::kHeaderBytes;
  // Sentinel address in a record.
  {
    std::vector<std::byte> mutated(bytes_);
    for (std::size_t i = 0; i < 4; ++i) {
      mutated[rec0 + i] = static_cast<std::byte>(0xFF);
    }
    ParsedFrame out;
    EXPECT_EQ(decode_tight(codec_, mutated, out), WireError::kBadDescriptor);
  }
  // Records out of (age, address) order: swap record 0 and 1.
  {
    std::vector<std::byte> mutated(bytes_);
    for (std::size_t i = 0; i < WireCodec::kRecordBytes; ++i) {
      std::swap(mutated[rec0 + i], mutated[rec0 + WireCodec::kRecordBytes + i]);
    }
    ParsedFrame out;
    EXPECT_EQ(decode_tight(codec_, mutated, out), WireError::kNotNormalized);
  }
  // Exact duplicate record.
  {
    std::vector<std::byte> mutated(bytes_);
    for (std::size_t i = 0; i < WireCodec::kRecordBytes; ++i) {
      mutated[rec0 + WireCodec::kRecordBytes + i] = mutated[rec0 + i];
    }
    ParsedFrame out;
    EXPECT_EQ(decode_tight(codec_, mutated, out), WireError::kNotNormalized);
  }
  // Same address at two different ages — sorted, but still a duplicate.
  {
    std::vector<NodeDescriptor> dup = {{5, 1}, {9, 2}, {5, 3}};
    ASSERT_TRUE(std::is_sorted(dup.begin(), dup.end(), ByHopThenAddress{}));
    // Splice the records into a byte-level copy of a valid frame (encode()
    // itself refuses to produce this).
    std::vector<std::byte> raw(bytes_);
    for (std::size_t r = 0; r < dup.size(); ++r) {
      const std::size_t off = rec0 + r * WireCodec::kRecordBytes;
      raw[off] = static_cast<std::byte>(dup[r].address & 0xFF);
      raw[off + 1] = raw[off + 2] = raw[off + 3] = static_cast<std::byte>(0);
      raw[off + 4] = static_cast<std::byte>(dup[r].hop_count & 0xFF);
      raw[off + 5] = raw[off + 6] = raw[off + 7] = static_cast<std::byte>(0);
    }
    ParsedFrame out;
    EXPECT_EQ(decode_tight(codec_, raw, out), WireError::kNotNormalized);
  }
}

TEST_F(WireCodecMalformed, TruncationAtEveryByteOffset) {
  // Every strict prefix of a valid frame is kTruncated: either the header
  // is incomplete, or the count field promises more records than the span
  // holds. No prefix may parse, crash, or read out of bounds.
  for (std::size_t len = 0; len < bytes_.size(); ++len) {
    std::vector<std::byte> prefix(bytes_.begin(), bytes_.begin() + len);
    prefix.shrink_to_fit();
    ParsedFrame out;
    EXPECT_EQ(codec_.decode(std::span<const std::byte>(prefix), out),
              WireError::kTruncated)
        << "prefix length " << len;
  }
}

TEST_F(WireCodecMalformed, TrailingBytesRejected) {
  for (std::size_t extra : {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
    std::vector<std::byte> padded(bytes_);
    padded.resize(bytes_.size() + extra, static_cast<std::byte>(0));
    ParsedFrame out;
    EXPECT_EQ(decode_tight(codec_, padded, out), WireError::kTrailingBytes);
  }
}

TEST_F(WireCodecMalformed, OversizedPayloadWithMatchingLengthRejected) {
  // A frame that consistently declares max_entries + 1 records (length
  // matches!) must still be rejected by the capacity bound.
  Rng rng(0xBADF00D6);
  const auto big = random_entries(rng, codec_.max_entries() + 1);
  WireCodec wide(codec_.max_entries());  // capacity max_entries + 1
  std::vector<std::byte> bytes;
  wide.encode(make_frame(big), bytes);
  ParsedFrame out;
  EXPECT_EQ(decode_tight(codec_, bytes, out), WireError::kOversized);
}

TEST(WireCodecFuzz, RandomBytesNeverParseUnsafely) {
  // 10k random buffers of random lengths: decode must return a typed
  // verdict (almost always an error — magic alone filters 65535/65536)
  // without UB; ASan/UBSan in CI make this a memory-safety proof.
  Rng rng(0xF0220007);
  WireCodec codec(30);
  std::uint64_t ok = 0;
  for (int i = 0; i < 10000; ++i) {
    const std::size_t len = rng.below(2 * codec.max_frame_bytes());
    std::vector<std::byte> buf(len);
    for (auto& b : buf) b = static_cast<std::byte>(rng.below(256));
    buf.shrink_to_fit();
    ParsedFrame out;
    if (codec.decode(std::span<const std::byte>(buf), out) == WireError::kOk) {
      ++ok;
    }
  }
  EXPECT_EQ(ok, 0u) << "random bytes should essentially never be a frame";
}

TEST(WireCodecFuzz, MutatedValidFramesAlwaysTyped) {
  // Random single-byte mutations of a valid frame: every outcome is either
  // a clean parse (the mutation hit a don't-care bit like tick) or a typed
  // error — never a crash, never an out-of-range enum.
  Rng rng(0xF0220008);
  WireCodec codec(8);
  const auto entries = random_entries(rng, 6);
  std::vector<std::byte> bytes;
  codec.encode(make_frame(entries), bytes);
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::byte> mutated(bytes);
    mutated[rng.below(static_cast<std::uint32_t>(mutated.size()))] =
        static_cast<std::byte>(rng.below(256));
    mutated.shrink_to_fit();
    ParsedFrame out;
    const WireError err =
        codec.decode(std::span<const std::byte>(mutated), out);
    EXPECT_NE(to_string(err), std::string("unknown"));
  }
}

}  // namespace
}  // namespace pss::transport
